package wan

import (
	"math"
	"testing"
	"time"

	"cloudscope/internal/geo"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/xrand"
)

var start = time.Date(2013, 4, 10, 0, 0, 0, 0, time.UTC)

func newModel(nClients int) *Model {
	return New(7, nClients, ipranges.EC2Regions)
}

func clientNamed(m *Model, name string) geo.Vantage {
	for _, c := range m.Clients {
		if c.Name == name {
			return c
		}
	}
	panic("no client " + name)
}

func TestGeographyDominatesLatency(t *testing.T) {
	m := newModel(32)
	rng := xrand.New(1)
	seattle := clientNamed(m, "Seattle")
	near := 0.0
	far := 0.0
	for i := 0; i < 50; i++ {
		near += m.RTT(seattle, "ec2.us-west-2", start, rng)
		far += m.RTT(seattle, "ec2.us-east-1", start, rng)
	}
	if near >= far {
		t.Fatalf("Seattle: us-west-2 (%.0f) should beat us-east-1 (%.0f)", near/50, far/50)
	}
	// Factor of ~3+ per the paper's Seattle observation.
	if far/near < 2 {
		t.Fatalf("latency ratio %.1f, want >2", far/near)
	}
}

func TestThroughputInverseWithLatency(t *testing.T) {
	m := newModel(32)
	rng := xrand.New(2)
	seattle := clientNamed(m, "Seattle")
	near, far := 0.0, 0.0
	for i := 0; i < 50; i++ {
		near += m.Throughput(seattle, "ec2.us-west-2", start, rng)
		far += m.Throughput(seattle, "ec2.sa-east-1", start, rng)
	}
	if near <= far {
		t.Fatalf("throughput: near %.0f <= far %.0f", near/50, far/50)
	}
}

func TestBestRegionFlipsForSomeClient(t *testing.T) {
	// Figure 11: at least one client's best US region changes over 72h.
	m := newModel(len(geo.Catalog()))
	rng := xrand.New(3)
	usRegions := []string{"ec2.us-east-1", "ec2.us-west-1", "ec2.us-west-2"}
	flips := 0
	for _, c := range m.Clients {
		prevBest := ""
		changed := false
		for h := 0; h < 72; h++ {
			tm := start.Add(time.Duration(h) * time.Hour)
			best, bestV := "", math.Inf(1)
			for _, r := range usRegions {
				// Use min of 3 samples to suppress jitter-only flips.
				v := math.Inf(1)
				for i := 0; i < 3; i++ {
					if s := m.RTT(c, r, tm, rng); s < v {
						v = s
					}
				}
				if v < bestV {
					best, bestV = r, v
				}
			}
			if prevBest != "" && best != prevBest {
				changed = true
			}
			prevBest = best
		}
		if changed {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("no client's best region ever changed")
	}
	if flips == len(m.Clients) {
		t.Fatal("every client flips constantly; ranking has no stability")
	}
}

func TestOptimalKDiminishingReturns(t *testing.T) {
	m := newModel(40)
	res := m.OptimalK(MetricLatency, 5, 24, time.Hour, start, 11)
	if len(res) != 5 {
		t.Fatalf("results = %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Value > res[i-1].Value+1e-9 {
			t.Fatalf("latency increased from k=%d (%.1f) to k=%d (%.1f)", i, res[i-1].Value, i+1, res[i].Value)
		}
	}
	// Paper: k=3 gives ~33% lower latency than k=1; returns diminish.
	drop3 := (res[0].Value - res[2].Value) / res[0].Value
	if drop3 < 0.15 || drop3 > 0.55 {
		t.Fatalf("k=3 improvement %.2f, want ~0.33", drop3)
	}
	drop45 := (res[3].Value - res[4].Value) / res[0].Value
	if drop45 > drop3/3 {
		t.Fatalf("k=5 marginal gain %.3f not diminishing vs %.3f", drop45, drop3)
	}
	// us-east-1 is in every best set (most clients are NA/EU).
	for _, r := range res {
		found := false
		for _, region := range r.Regions {
			if region == "ec2.us-east-1" {
				found = true
			}
		}
		if !found {
			t.Fatalf("k=%d best set %v excludes us-east-1", r.K, r.Regions)
		}
	}
}

func TestOptimalKThroughputIncreases(t *testing.T) {
	m := newModel(24)
	res := m.OptimalK(MetricThroughput, 4, 12, time.Hour, start, 12)
	for i := 1; i < len(res); i++ {
		if res[i].Value < res[i-1].Value-1e-9 {
			t.Fatalf("throughput decreased at k=%d", i+1)
		}
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	m := newModel(24)
	opt := m.OptimalK(MetricLatency, 4, 12, time.Hour, start, 13)
	greedy := m.GreedyK(MetricLatency, 4, 12, time.Hour, start, 13)
	for i := range opt {
		if greedy[i].Value < opt[i].Value-1e-9 {
			t.Fatalf("greedy beat exhaustive at k=%d", i+1)
		}
		if greedy[i].Value > opt[i].Value*1.15 {
			t.Fatalf("greedy %.1f far from optimal %.1f at k=%d", greedy[i].Value, opt[i].Value, i+1)
		}
	}
}

func TestDownstreamISPCounts(t *testing.T) {
	m := newModel(8)
	if got := len(m.DownstreamISPs("ec2.us-east-1", 0)); got != 36 {
		t.Fatalf("us-east zone0 ISPs = %d", got)
	}
	if got := len(m.DownstreamISPs("ec2.sa-east-1", 1)); got != 4 {
		t.Fatalf("sa-east zone1 ISPs = %d", got)
	}
	// Out-of-range zone clamps.
	if got := len(m.DownstreamISPs("ec2.us-west-1", 9)); got != 19 {
		t.Fatalf("clamped zone ISPs = %d", got)
	}
}

func TestTracerouteStructure(t *testing.T) {
	m := newModel(16)
	rng := xrand.New(5)
	c := m.Clients[3]
	hops := m.Traceroute(c, "ec2.eu-west-1", 1, rng)
	if len(hops) < 4 {
		t.Fatalf("hops = %d", len(hops))
	}
	if hops[0].ASN != cloudASN {
		t.Fatalf("first hop ASN = %d", hops[0].ASN)
	}
	isp, ok := FirstDownstream(hops)
	if !ok || isp == cloudASN {
		t.Fatalf("downstream = %d ok=%v", isp, ok)
	}
	pool := m.DownstreamISPs("ec2.eu-west-1", 1)
	found := false
	for _, p := range pool {
		if p == isp {
			found = true
		}
	}
	if !found {
		t.Fatal("downstream ISP not from region pool")
	}
	for i := 2; i < len(hops); i++ {
		if hops[i].RTT < hops[1].RTT {
			t.Fatal("hop RTTs not increasing outward")
		}
	}
	// Determinism of the route (not the jitter): same ISP every time.
	isp2, _ := FirstDownstream(m.Traceroute(c, "ec2.eu-west-1", 1, xrand.New(99)))
	if isp2 != isp {
		t.Fatal("client route ISP not stable")
	}
}

func TestRouteSpreadUneven(t *testing.T) {
	m := newModel(200)
	counts := map[int]int{}
	for _, c := range m.Clients {
		counts[m.routeISP(c, "ec2.us-west-1", 0)]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	frac := float64(max) / float64(len(m.Clients))
	// Paper: up to ~31% of routes share one downstream ISP.
	if frac < 0.12 || frac > 0.5 {
		t.Fatalf("top ISP share %.2f, want ~0.3", frac)
	}
	if len(counts) < 8 {
		t.Fatalf("only %d ISPs observed from 200 clients", len(counts))
	}
}

func TestOutageSimulation(t *testing.T) {
	m := newModel(100)
	res := m.SimulateOutages([]string{"ec2.us-east-1", "ec2.ap-northeast-1", "ec2.us-west-1"}, 3, 40, 17)
	u1, u2, u3 := res.MeanUnreachable[1], res.MeanUnreachable[2], res.MeanUnreachable[3]
	if u1 <= 0 {
		t.Fatal("single-region outages never cut anyone off")
	}
	if !(u1 > u2 && u2 >= u3) {
		t.Fatalf("unreachability not decreasing: %.4f %.4f %.4f", u1, u2, u3)
	}
	if u2 > u1/2 {
		t.Fatalf("second region too weak: %.4f vs %.4f", u2, u1)
	}
}

func TestWhois(t *testing.T) {
	if Whois(cloudASN) != "AS16509 AMAZON-02" {
		t.Fatal("cloud whois wrong")
	}
	if Whois(7042) == "" || Whois(64501) == "" {
		t.Fatal("whois empty")
	}
}

func TestDeterministicModel(t *testing.T) {
	a, b := newModel(16), newModel(16)
	ra, rb := xrand.New(4), xrand.New(4)
	for i := 0; i < 50; i++ {
		c := a.Clients[i%16]
		va := a.RTT(c, "ec2.us-east-1", start.Add(time.Duration(i)*time.Minute), ra)
		vb := b.RTT(c, "ec2.us-east-1", start.Add(time.Duration(i)*time.Minute), rb)
		if va != vb {
			t.Fatal("RTT not deterministic")
		}
	}
}
