// Package wan models the wide-area network between clients (PlanetLab
// vantage stand-ins) and cloud regions: per-pair latency with
// time-varying congestion, throughput shaped by path RTT and bottleneck
// capacity, and AS-level routes with region-specific downstream-ISP
// diversity.
//
// Three properties of the real measurements drive §5's findings and are
// modelled explicitly:
//
//   - Latency is dominated by geography (clients far from every region
//     suffer everywhere), so adding regions helps most for clients whose
//     nearest region is far — the diminishing-returns shape of Fig. 12.
//   - For some client/region pairs the ranking of nearby regions is not
//     stable: a time-varying congestion term lets the best region change
//     over hours (Fig. 11's Boulder effect).
//   - Each region has a finite set of downstream ISPs with an uneven
//     route spread (Table 16), so single-region deployments inherit
//     localized routing-failure risk.
package wan

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"cloudscope/internal/geo"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/parallel"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/xrand"
)

// Metrics counts wide-area measurement traffic: latency samples,
// throughput downloads, and traceroutes, with the RTT distribution. A
// nil *Metrics disables accounting.
type Metrics struct {
	RTTSamples        *telemetry.Counter
	ThroughputSamples *telemetry.Counter
	Traceroutes       *telemetry.Counter
	RTTms             *telemetry.Histogram
}

// NewMetrics registers the WAN instruments on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		RTTSamples:        r.Counter("wan.rtt.samples"),
		ThroughputSamples: r.Counter("wan.throughput.samples"),
		Traceroutes:       r.Counter("wan.traceroutes"),
		RTTms:             r.Histogram("wan.rtt_ms", telemetry.LatencyBucketsMs),
	}
}

// Model is a deterministic wide-area network.
type Model struct {
	seed    int64
	Clients []geo.Vantage
	Regions []string

	// Par controls the sample-collection fan-out. Each client draws
	// from its own seed-derived stream, so results are identical at
	// every worker count.
	Par parallel.Options

	// metrics is read on every sample, so it bypasses any locking.
	metrics atomic.Pointer[Metrics]

	// chaos is read on every sample, so it bypasses any locking.
	chaos atomic.Pointer[ChaosFunc]
}

// SetMetrics installs measurement instrumentation; nil disables it.
func (m *Model) SetMetrics(mm *Metrics) { m.metrics.Store(mm) }

// ChaosFunc returns extra one-way path delay, in milliseconds, for a
// (client, region) pair at time t. It must be a pure function of its
// arguments: the model calls it from many workers and relies on it for
// worker-count-invariant output.
type ChaosFunc func(clientID, region string, t time.Time) float64

// SetChaos installs a fault-injection delay hook; nil removes it.
func (m *Model) SetChaos(f ChaosFunc) {
	if f == nil {
		m.chaos.Store(nil)
		return
	}
	m.chaos.Store(&f)
}

// chaosDelayMs reports the injected extra delay for one sample.
func (m *Model) chaosDelayMs(client geo.Vantage, region string, t time.Time) float64 {
	if cf := m.chaos.Load(); cf != nil {
		return (*cf)(client.ID, region, t)
	}
	return 0
}

// New builds a model over nClients PlanetLab vantages and the given
// regions.
func New(seed int64, nClients int, regions []string) *Model {
	return &Model{seed: seed, Clients: geo.PlanetLab(nClients), Regions: append([]string(nil), regions...)}
}

// pairRand derives a stable stream for a (client, region, salt) tuple.
func (m *Model) pairRand(client, region, salt string) *xrand.Rand {
	return xrand.SplitSeeded(m.seed, "wan/"+client+"/"+region+"/"+salt)
}

// pairHash folds a tuple into [0,1).
func pairHash(parts ...string) float64 {
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= '|'
		h *= 1099511628211
	}
	return float64(h%100000) / 100000
}

// BaseRTT returns the congestion-free RTT in milliseconds between a
// client and a region: propagation plus a stable per-pair access/peering
// penalty.
func (m *Model) BaseRTT(client geo.Vantage, region string) float64 {
	prop := geo.PropagationRTTms(client.Location, geo.RegionLocation(region))
	access := 4 + 26*pairHash(client.ID, region, "access")
	return prop + access
}

// congestion returns the time-varying RTT addition in ms. Each pair has
// a diurnal swing plus slower multi-hour waves; amplitude varies by
// pair, so some pairs' region ranking flips over time.
func (m *Model) congestion(client geo.Vantage, region string, t time.Time) float64 {
	phase := pairHash(client.ID, region, "phase") * 2 * math.Pi
	amp := 3 + 35*math.Pow(pairHash(client.ID, region, "amp"), 2)
	hours := float64(t.Unix()) / 3600
	wave := math.Sin(hours/24*2*math.Pi+phase) + 0.6*math.Sin(hours/7.3*2*math.Pi+2.1*phase)
	return amp * (wave + 1.3) / 2.3
}

// RTT returns one latency sample in milliseconds at time t, including
// measurement jitter.
func (m *Model) RTT(client geo.Vantage, region string, t time.Time, rng *xrand.Rand) float64 {
	base := m.BaseRTT(client, region) + m.congestion(client, region, t) + m.chaosDelayMs(client, region, t)
	jitter := rng.ExpFloat64() * 2.5
	if rng.Bool(0.01) {
		jitter += rng.Float64() * 80 // transient spike
	}
	rtt := base + jitter
	if mm := m.metrics.Load(); mm != nil {
		mm.RTTSamples.Inc()
		mm.RTTms.Observe(rtt)
	}
	return rtt
}

// Throughput returns one HTTP-download throughput sample in KB/s at
// time t. Throughput falls with RTT (TCP window limits) and is capped
// by a per-pair bottleneck.
func (m *Model) Throughput(client geo.Vantage, region string, t time.Time, rng *xrand.Rand) float64 {
	rtt := m.BaseRTT(client, region) + m.congestion(client, region, t) + m.chaosDelayMs(client, region, t)
	// 64 KB effective window / RTT, in KB/s.
	windowLimited := 64.0 / (rtt / 1000)
	bottleneck := 2200 + 7000*pairHash(client.ID, region, "cap")
	thr := math.Min(windowLimited, bottleneck)
	if mm := m.metrics.Load(); mm != nil {
		mm.ThroughputSamples.Inc()
	}
	// Multiplicative sampling noise.
	return thr * (0.85 + 0.3*rng.Float64())
}

// --- AS-level routing -----------------------------------------------

// Hop is one traceroute step.
type Hop struct {
	ASN int
	IP  netaddr.IP
	RTT float64 // ms
}

// downstreamISPCount reproduces Table 16's per-region/zone pool sizes.
var downstreamISPCount = map[string][]int{
	"ec2.us-east-1":      {36, 36, 34},
	"ec2.us-west-1":      {18, 19},
	"ec2.us-west-2":      {19, 19, 19},
	"ec2.eu-west-1":      {10, 11, 13},
	"ec2.ap-northeast-1": {9, 9},
	"ec2.ap-southeast-1": {11, 12},
	"ec2.ap-southeast-2": {4, 4},
	"ec2.sa-east-1":      {4, 4},
}

// cloudASN is the cloud provider's autonomous system.
const cloudASN = 16509

// DownstreamISPs returns the ASNs peering with a region's zone. Zone
// pools overlap heavily within a region (as observed: different zones
// of a region see almost the same ISPs).
func (m *Model) DownstreamISPs(region string, zone int) []int {
	counts := downstreamISPCount[region]
	if len(counts) == 0 {
		counts = []int{8}
	}
	if zone >= len(counts) {
		zone = len(counts) - 1
	}
	n := counts[zone]
	base := 7000 + int(pairHash(region, "aspool")*1000)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, base+i)
	}
	return out
}

// routeISP picks the downstream ISP a client's route into (region,
// zone) traverses. The spread is deliberately uneven: rank-weighted so
// the top ISP carries ~30% of routes (§5.2's observation).
func (m *Model) routeISP(client geo.Vantage, region string, zone int) int {
	pool := m.DownstreamISPs(region, zone)
	u := pairHash(client.ID, region, "route")
	// Zipf-ish CDF over ranks.
	weightSum := 0.0
	for i := range pool {
		weightSum += 1 / math.Pow(float64(i+1), 1.25)
	}
	acc := 0.0
	for i := range pool {
		acc += 1 / math.Pow(float64(i+1), 1.25) / weightSum
		if u <= acc {
			return pool[i]
		}
	}
	return pool[len(pool)-1]
}

// Traceroute returns the AS-level path from an instance in (region,
// zone) out to client — the direction the paper probed. The first
// non-cloud hop's ASN identifies the downstream ISP.
func (m *Model) Traceroute(client geo.Vantage, region string, zone int, rng *xrand.Rand) []Hop {
	if mm := m.metrics.Load(); mm != nil {
		mm.Traceroutes.Inc()
	}
	total := m.BaseRTT(client, region)
	isp := m.routeISP(client, region, zone)
	clientASN := 64500 + int(pairHash(client.ID, "asn")*400)
	transit := 3300 + int(pairHash(client.ID, region, "transit")*60)

	mkIP := func(asn, hop int) netaddr.IP {
		return netaddr.IP(uint32(10+asn%200)<<24 | uint32(asn%251)<<16 | uint32(hop)<<8 | 1)
	}
	hops := []Hop{
		{ASN: cloudASN, IP: mkIP(cloudASN, zone), RTT: 0.3 + rng.Float64()*0.3},
		{ASN: cloudASN, IP: mkIP(cloudASN, zone+8), RTT: 0.8 + rng.Float64()*0.5},
		{ASN: isp, IP: mkIP(isp, 1), RTT: 2 + rng.Float64()*2},
		{ASN: isp, IP: mkIP(isp, 2), RTT: total * 0.3},
		{ASN: transit, IP: mkIP(transit, 1), RTT: total * 0.6},
		{ASN: clientASN, IP: mkIP(clientASN, 1), RTT: total*0.95 + rng.Float64()*2},
	}
	return hops
}

// FirstDownstream returns the first non-cloud AS on the path.
func FirstDownstream(hops []Hop) (int, bool) {
	for _, h := range hops {
		if h.ASN != cloudASN {
			return h.ASN, true
		}
	}
	return 0, false
}

// Whois maps an ASN to a display name.
func Whois(asn int) string {
	switch {
	case asn == cloudASN:
		return "AS16509 AMAZON-02"
	case asn >= 7000 && asn < 8100:
		return fmt.Sprintf("AS%d PEER-ISP", asn)
	case asn >= 3300 && asn < 3400:
		return fmt.Sprintf("AS%d TRANSIT", asn)
	default:
		return fmt.Sprintf("AS%d STUB", asn)
	}
}

// --- Outage simulation ------------------------------------------------

// OutageResult summarizes a downstream-ISP failure simulation.
type OutageResult struct {
	Trials int
	// MeanUnreachable[k] is the mean fraction of clients cut off from
	// every region of a k-region deployment when one random downstream
	// ISP per region fails.
	MeanUnreachable map[int]float64
}

// SimulateOutages estimates availability gains from multi-region
// deployments: for each trial, fail one random downstream ISP in every
// region; a client is cut off if, for every region in its deployment,
// its route traverses a failed ISP. Deployments of size k use the first
// k regions of bestOrder.
func (m *Model) SimulateOutages(bestOrder []string, maxK, trials int, seed int64) OutageResult {
	res := OutageResult{Trials: trials, MeanUnreachable: map[int]float64{}}
	for k := 1; k <= maxK && k <= len(bestOrder); k++ {
		regions := bestOrder[:k]
		shards := parallel.Shards(trials, m.Par.ShardSize)
		sums := make([]float64, len(shards))
		if err := parallel.Run(m.Par, trials, func(sh parallel.Shard) error {
			// Each trial draws from its own seed-derived stream, so
			// shard boundaries and worker count cannot shift outcomes.
			sum := 0.0
			for trial := sh.Lo; trial < sh.Hi; trial++ {
				rng := xrand.SplitSeeded(seed, fmt.Sprintf("wan/outage/k%d/trial%d", k, trial))
				failed := map[string]int{}
				for _, r := range regions {
					pool := m.DownstreamISPs(r, 0)
					// Fail a popular ISP with rank-weighted probability —
					// outages in big ISPs hurt more routes.
					failed[r] = pool[int(float64(len(pool))*rng.Float64()*rng.Float64())]
				}
				cut := 0
				for _, c := range m.Clients {
					lost := true
					for _, r := range regions {
						if m.routeISP(c, r, 0) != failed[r] {
							lost = false
							break
						}
					}
					if lost {
						cut++
					}
				}
				sum += float64(cut) / float64(len(m.Clients))
			}
			sums[sh.Index] = sum
			return nil
		}); err != nil {
			panic(err) // trials cannot fail; only re-raised panics arrive here
		}
		// Fold per-shard partial sums in shard order so float addition
		// order is fixed regardless of completion order.
		sum := 0.0
		for _, s := range sums {
			sum += s
		}
		res.MeanUnreachable[k] = sum / float64(trials)
	}
	return res
}

// --- Optimal-k analysis -----------------------------------------------

// Metric selects what an optimal-k search optimizes.
type Metric int

// Metrics.
const (
	MetricLatency Metric = iota
	MetricThroughput
)

// OptimalKResult holds one k's best subset and its average performance.
type OptimalKResult struct {
	K       int
	Regions []string
	// Value is mean latency in ms (lower better) or mean throughput in
	// KB/s (higher better) across clients and rounds, with each client
	// using its best region per round.
	Value float64
}

// samples holds precomputed per-round per-client per-region values.
type samples struct {
	vals [][][]float64 // round → client → region
}

// collect samples every (client, region) pair once per round. Clients
// fan out across workers, each drawing from its own seed-derived
// stream and writing only its column of every round, so the sample
// tensor is identical at every worker count.
func (m *Model) collect(metric Metric, rounds int, interval time.Duration, start time.Time, seed int64) *samples {
	s := &samples{vals: make([][][]float64, rounds)}
	for round := range s.vals {
		s.vals[round] = make([][]float64, len(m.Clients))
	}
	err := parallel.Run(m.Par, len(m.Clients), func(sh parallel.Shard) error {
		for ci := sh.Lo; ci < sh.Hi; ci++ {
			c := m.Clients[ci]
			rng := xrand.SplitSeeded(seed, "wan/collect/"+c.ID)
			for round := 0; round < rounds; round++ {
				t := start.Add(time.Duration(round) * interval)
				vals := make([]float64, len(m.Regions))
				for ri, r := range m.Regions {
					if metric == MetricLatency {
						vals[ri] = m.RTT(c, r, t, rng)
					} else {
						vals[ri] = m.Throughput(c, r, t, rng)
					}
				}
				s.vals[round][ci] = vals
			}
		}
		return nil
	})
	if err != nil {
		panic(err) // workers only surface panics; re-raise on the caller
	}
	return s
}

// OptimalK computes, for each k in [1, maxK], the best k-region subset
// and the average performance clients would see picking their best
// region each round — the paper's Figure 12 upper bound. The search is
// exhaustive over subsets, exactly as published.
func (m *Model) OptimalK(metric Metric, maxK, rounds int, interval time.Duration, start time.Time, seed int64) []OptimalKResult {
	s := m.collect(metric, rounds, interval, start, seed)
	var results []OptimalKResult
	n := len(m.Regions)
	for k := 1; k <= maxK && k <= n; k++ {
		best := OptimalKResult{K: k}
		first := true
		forEachSubset(n, k, func(subset []int) {
			v := s.score(metric, subset)
			better := v < best.Value
			if metric == MetricThroughput {
				better = v > best.Value
			}
			if first || better {
				first = false
				best.Value = v
				best.Regions = nil
				for _, i := range subset {
					best.Regions = append(best.Regions, m.Regions[i])
				}
			}
		})
		results = append(results, best)
	}
	return results
}

// GreedyK is the ablation comparator: grow the region set greedily
// instead of exhaustively.
func (m *Model) GreedyK(metric Metric, maxK, rounds int, interval time.Duration, start time.Time, seed int64) []OptimalKResult {
	s := m.collect(metric, rounds, interval, start, seed)
	var chosen []int
	var results []OptimalKResult
	remaining := map[int]bool{}
	for i := range m.Regions {
		remaining[i] = true
	}
	for k := 1; k <= maxK && k <= len(m.Regions); k++ {
		bestIdx, bestVal, first := -1, 0.0, true
		var cand []int
		for i := range remaining {
			if !remaining[i] {
				continue
			}
			cand = append(cand[:0], chosen...)
			cand = append(cand, i)
			v := s.score(metric, cand)
			better := v < bestVal
			if metric == MetricThroughput {
				better = v > bestVal
			}
			if first || better {
				first, bestVal, bestIdx = false, v, i
			}
		}
		chosen = append(chosen, bestIdx)
		delete(remaining, bestIdx)
		regions := make([]string, len(chosen))
		for i, idx := range chosen {
			regions[i] = m.Regions[idx]
		}
		sort.Strings(regions)
		results = append(results, OptimalKResult{K: k, Regions: regions, Value: bestVal})
	}
	return results
}

// score averages each client's per-round best value over a subset.
func (s *samples) score(metric Metric, subset []int) float64 {
	total, count := 0.0, 0
	for _, perClient := range s.vals {
		for _, vals := range perClient {
			best := vals[subset[0]]
			for _, ri := range subset[1:] {
				if metric == MetricLatency && vals[ri] < best {
					best = vals[ri]
				}
				if metric == MetricThroughput && vals[ri] > best {
					best = vals[ri]
				}
			}
			total += best
			count++
		}
	}
	return total / float64(count)
}

// forEachSubset enumerates k-subsets of [0, n).
func forEachSubset(n, k int, fn func([]int)) {
	subset := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(subset)
			return
		}
		for i := start; i < n; i++ {
			subset[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}
