package simnet

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"cloudscope/internal/netaddr"
	"cloudscope/internal/telemetry"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(Epoch)
	if !c.Now().Equal(Epoch) {
		t.Fatalf("start = %v", c.Now())
	}
	c.Advance(90 * time.Second)
	if got := c.Now().Sub(Epoch); got != 90*time.Second {
		t.Fatalf("advanced %v", got)
	}
}

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if !c.Now().Equal(Epoch) {
		t.Fatalf("zero clock Now = %v", c.Now())
	}
}

func TestClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	NewClock(Epoch).Advance(-time.Second)
}

func TestQueryRoundTrip(t *testing.T) {
	f := NewFabric(nil)
	server := netaddr.MustParseIP("10.0.0.1")
	client := netaddr.MustParseIP("192.168.0.1")
	f.Register(server, HandlerFunc(func(src, dst netaddr.IP, p []byte) []byte {
		if src != client || dst != server {
			t.Errorf("handler saw src=%v dst=%v", src, dst)
		}
		return append([]byte("echo:"), p...)
	}))
	resp, rtt, err := f.Query(client, server, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("echo:hi")) {
		t.Fatalf("resp = %q", resp)
	}
	if rtt != time.Millisecond {
		t.Fatalf("rtt = %v, want 1ms default", rtt)
	}
}

func TestQueryUnreachable(t *testing.T) {
	f := NewFabric(nil)
	_, _, err := f.Query(1, 2, nil)
	if err != ErrHostUnreachable {
		t.Fatalf("err = %v", err)
	}
}

func TestQueryNilResponseIsTimeout(t *testing.T) {
	f := NewFabric(nil)
	f.Register(5, HandlerFunc(func(_, _ netaddr.IP, _ []byte) []byte { return nil }))
	_, _, err := f.Query(1, 5, []byte("x"))
	if err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
}

func TestLatencyModelAndClockCharge(t *testing.T) {
	f := NewFabric(nil)
	f.SetLatency(func(src, dst netaddr.IP) time.Duration { return 25 * time.Millisecond })
	f.Register(7, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	start := f.Clock().Now()
	_, rtt, err := f.Query(1, 7, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 50*time.Millisecond {
		t.Fatalf("rtt = %v", rtt)
	}
	if got := f.Clock().Now().Sub(start); got != 50*time.Millisecond {
		t.Fatalf("clock advanced %v", got)
	}
}

func TestAsymmetricLatency(t *testing.T) {
	f := NewFabric(nil)
	f.SetLatency(func(src, dst netaddr.IP) time.Duration {
		if src < dst {
			return 10 * time.Millisecond
		}
		return 30 * time.Millisecond
	})
	f.Register(9, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	_, rtt, _ := f.Query(1, 9, []byte("x"))
	if rtt != 40*time.Millisecond {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestPing(t *testing.T) {
	f := NewFabric(nil)
	f.Register(3, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	rtt, err := f.Ping(1, 3)
	if err != nil || rtt != time.Millisecond {
		t.Fatalf("rtt=%v err=%v", rtt, err)
	}
	if _, err := f.Ping(1, 99); err != ErrHostUnreachable {
		t.Fatalf("unreachable ping err = %v", err)
	}
}

func TestLossInjection(t *testing.T) {
	// Loss fate is a hash of the datagram's identity, so distinct flows
	// draw independently while replays share a fate.
	f := NewFabric(nil)
	f.Register(4, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	f.SetLoss(0.5, 99)
	drops := 0
	for i := 0; i < 1000; i++ {
		if _, _, err := f.QueryFlow(1, 4, uint64(i), []byte("x")); err != nil {
			// Injected drops are typed — and still read as timeouts.
			if !errors.Is(err, ErrInjectedLoss) || !errors.Is(err, ErrTimeout) {
				t.Fatalf("loss error = %v", err)
			}
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("drops = %d/1000 with p=0.5", drops)
	}
	// Determinism: same seed, same drop pattern — even sent in reverse.
	g := NewFabric(nil)
	g.Register(4, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	g.SetLoss(0.5, 99)
	gd := 0
	for i := 999; i >= 0; i-- {
		if _, _, err := g.QueryFlow(1, 4, uint64(i), []byte("x")); errors.Is(err, ErrInjectedLoss) {
			gd++
		}
	}
	if gd != drops {
		t.Fatalf("loss not order-invariant: %d vs %d", gd, drops)
	}
}

func TestLossFateIsPerDatagram(t *testing.T) {
	f := NewFabric(nil)
	f.Register(4, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	f.SetLoss(0.5, 1)
	// Identical datagram on the same flow: one fate, every time.
	_, _, first := f.QueryFlow(1, 4, 42, []byte("probe"))
	for i := 0; i < 20; i++ {
		if _, _, err := f.QueryFlow(1, 4, 42, []byte("probe")); errors.Is(err, ErrInjectedLoss) != errors.Is(first, ErrInjectedLoss) {
			t.Fatal("replay on the same flow changed fate")
		}
	}
	// Varying the flow redraws.
	varied := 0
	for i := 0; i < 100; i++ {
		if _, _, err := f.QueryFlow(1, 4, uint64(i), []byte("probe")); errors.Is(err, ErrInjectedLoss) != errors.Is(first, ErrInjectedLoss) {
			varied++
		}
	}
	if varied == 0 {
		t.Fatal("flow identity does not affect the loss draw")
	}
}

func TestLossErrorDistinguishableFromRefusal(t *testing.T) {
	f := NewFabric(nil)
	f.Register(5, HandlerFunc(func(_, _ netaddr.IP, _ []byte) []byte { return nil }))
	_, _, err := f.Query(1, 5, []byte("x"))
	if !errors.Is(err, ErrTimeout) || errors.Is(err, ErrInjectedLoss) {
		t.Fatalf("handler refusal err = %v; must be a timeout but not injected loss", err)
	}
}

func TestFabricMetricsSplit(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := NewFabric(nil)
	f.SetMetrics(NewFabricMetrics(reg))
	f.Register(4, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	f.Register(5, HandlerFunc(func(_, _ netaddr.IP, _ []byte) []byte { return nil }))

	f.Query(1, 4, []byte("ok"))   // delivered
	f.Query(1, 5, []byte("nil"))  // failed: handler refused
	f.Query(1, 99, []byte("un"))  // failed: unreachable
	f.SetLoss(1.0, 7)             // every subsequent query drops
	f.Query(1, 4, []byte("drop")) // dropped: injected
	f.SetLoss(0, 0)
	f.Ping(1, 4) // delivered

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"fabric.datagrams.sent":      5,
		"fabric.datagrams.delivered": 2,
		"fabric.datagrams.dropped":   1,
		"fabric.datagrams.failed":    2,
	} {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if h, ok := snap.Histogram("fabric.rtt_ms"); !ok || h.Count != 2 {
		t.Errorf("rtt histogram count = %+v, want 2 observations", h)
	}
}

func TestUnregister(t *testing.T) {
	f := NewFabric(nil)
	f.Register(8, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	if f.NumHosts() != 1 {
		t.Fatal("host not registered")
	}
	f.Unregister(8)
	if f.NumHosts() != 0 {
		t.Fatal("host not unregistered")
	}
	if _, _, err := f.Query(1, 8, nil); err != ErrHostUnreachable {
		t.Fatalf("err = %v", err)
	}
}

type verdictFunc func(src, dst netaddr.IP, flow uint64, payload []byte) Verdict

func (f verdictFunc) Intercept(src, dst netaddr.IP, flow uint64, payload []byte) Verdict {
	return f(src, dst, flow, payload)
}

func TestInterceptorDrop(t *testing.T) {
	f := NewFabric(nil)
	f.Register(4, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	f.SetInterceptor(verdictFunc(func(_, dst netaddr.IP, _ uint64, _ []byte) Verdict {
		return Verdict{Drop: dst == 4}
	}))
	if _, _, err := f.Query(1, 4, []byte("x")); !errors.Is(err, ErrInjectedLoss) {
		t.Fatalf("intercepted query err = %v, want injected loss", err)
	}
	f.Register(5, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	if _, _, err := f.Query(1, 5, []byte("x")); err != nil {
		t.Fatalf("unintercepted query err = %v", err)
	}
	f.SetInterceptor(nil)
	if _, _, err := f.Query(1, 4, []byte("x")); err != nil {
		t.Fatalf("query after interceptor removed err = %v", err)
	}
}

func TestInterceptorExtraRTT(t *testing.T) {
	f := NewFabric(nil)
	f.Register(4, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	f.SetInterceptor(verdictFunc(func(_, _ netaddr.IP, _ uint64, _ []byte) Verdict {
		return Verdict{ExtraRTT: 80 * time.Millisecond}
	}))
	start := f.Clock().Now()
	_, rtt, err := f.Query(1, 4, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if rtt != 81*time.Millisecond {
		t.Fatalf("rtt = %v, want base 1ms + 80ms brownout", rtt)
	}
	if got := f.Clock().Now().Sub(start); got != 81*time.Millisecond {
		t.Fatalf("clock advanced %v, brownout delay must be charged to sim time", got)
	}
}

func TestInterceptorForgedResponse(t *testing.T) {
	f := NewFabric(nil)
	handlerHit := false
	f.Register(4, HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte {
		handlerHit = true
		return p
	}))
	f.SetInterceptor(verdictFunc(func(_, _ netaddr.IP, _ uint64, _ []byte) Verdict {
		return Verdict{Respond: []byte("forged")}
	}))
	resp, _, err := f.Query(1, 4, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("forged")) {
		t.Fatalf("resp = %q", resp)
	}
	if handlerHit {
		t.Fatal("forged response must short-circuit the handler")
	}
}

func TestConcurrentQueries(t *testing.T) {
	f := NewFabric(nil)
	for i := 1; i <= 16; i++ {
		f.Register(netaddr.IP(i), HandlerFunc(func(_, _ netaddr.IP, p []byte) []byte { return p }))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				dst := netaddr.IP(i%16 + 1)
				if _, _, err := f.Query(100, dst, []byte("x")); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
