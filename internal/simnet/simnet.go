// Package simnet provides the simulated network fabric the measurement
// study runs over: a virtual clock and an in-memory datagram network
// that binds IPv4 addresses to request handlers, with a pluggable
// latency model and failure injection.
//
// The fabric is deliberately simple — request/response datagrams, no
// routing tables — because the study's probes (DNS queries, TCP pings)
// are all request/response. Wide-area path properties live in
// internal/wan; intra-cloud properties in internal/cloud. Both plug in
// through the fabric's latency function.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cloudscope/internal/netaddr"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/xrand"
)

// Clock is a virtual clock. The zero value starts at a fixed epoch; use
// NewClock to choose a start time. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the default start of simulated time: the first day of the
// paper's packet capture (Tuesday, June 26, 2012, 00:00 UTC).
var Epoch = time.Date(2012, 6, 26, 0, 0, 0, 0, time.UTC)

// NewClock returns a clock set to start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now.IsZero() {
		c.now = Epoch
	}
	return c.now
}

// Advance moves simulated time forward by d. Negative d panics: the
// simulators assume monotone time.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("simnet: Advance by negative duration")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now.IsZero() {
		c.now = Epoch
	}
	c.now = c.now.Add(d)
}

// Handler processes one datagram addressed to a registered IP and
// returns the response payload, or nil to drop the request.
type Handler interface {
	ServePacket(src, dst netaddr.IP, payload []byte) []byte
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(src, dst netaddr.IP, payload []byte) []byte

// ServePacket implements Handler.
func (f HandlerFunc) ServePacket(src, dst netaddr.IP, payload []byte) []byte {
	return f(src, dst, payload)
}

// LatencyFunc models one-way delay between two addresses.
type LatencyFunc func(src, dst netaddr.IP) time.Duration

// Verdict is an Interceptor's decision about one datagram.
type Verdict struct {
	// Drop discards the datagram; the caller sees ErrInjectedLoss.
	Drop bool
	// ExtraRTT is added to the round-trip time (brownouts).
	ExtraRTT time.Duration
	// Respond, when non-nil, is delivered as the response instead of
	// invoking the destination handler — how chaos scenarios forge
	// SERVFAIL bursts without touching the servers themselves.
	Respond []byte
}

// Interceptor inspects datagrams in flight and injects faults. flow is
// the caller-supplied flow identity from QueryFlow (0 for plain Query
// and Ping); payload is nil for pings. Implementations must be pure
// functions of their arguments — any internal state would make fault
// patterns depend on goroutine scheduling and break worker-count
// invariance.
type Interceptor interface {
	Intercept(src, dst netaddr.IP, flow uint64, payload []byte) Verdict
}

// Errors returned by Query.
var (
	ErrHostUnreachable = errors.New("simnet: no host at destination")
	ErrTimeout         = errors.New("simnet: request timed out")
	// ErrInjectedLoss reports a datagram dropped by SetLoss failure
	// injection. It wraps ErrTimeout — to a caller an injected drop looks
	// like any other timeout — but errors.Is(err, ErrInjectedLoss) lets
	// tests and metrics split injected drops from handler-refused
	// requests.
	ErrInjectedLoss = fmt.Errorf("simnet: injected packet loss: %w", ErrTimeout)
)

// FabricMetrics holds the fabric's instrumentation hooks. All fields
// are optional; a nil *FabricMetrics (or nil fields) disables
// accounting with no other behavior change.
type FabricMetrics struct {
	// Sent counts every datagram handed to Query or Ping.
	Sent *telemetry.Counter
	// Delivered counts datagrams answered by a handler.
	Delivered *telemetry.Counter
	// Dropped counts datagrams lost to failure injection (SetLoss).
	Dropped *telemetry.Counter
	// Failed counts unreachable destinations and handler-refused
	// (nil-response) requests.
	Failed *telemetry.Counter
	// RTTms is the round-trip latency distribution of delivered
	// datagrams, in milliseconds.
	RTTms *telemetry.Histogram
}

// NewFabricMetrics registers the fabric's standard instruments on r.
func NewFabricMetrics(r *telemetry.Registry) *FabricMetrics {
	return &FabricMetrics{
		Sent:      r.Counter("fabric.datagrams.sent"),
		Delivered: r.Counter("fabric.datagrams.delivered"),
		Dropped:   r.Counter("fabric.datagrams.dropped"),
		Failed:    r.Counter("fabric.datagrams.failed"),
		RTTms:     r.Histogram("fabric.rtt_ms", telemetry.LatencyBucketsMs),
	}
}

// Fabric is an in-memory datagram network. The zero value is not
// usable; construct with NewFabric.
type Fabric struct {
	mu          sync.RWMutex
	hosts       map[netaddr.IP]Handler
	latency     LatencyFunc
	lossProb    float64
	lossSeed    int64
	interceptor Interceptor
	clock       *Clock
	metrics     *FabricMetrics
}

// NewFabric returns an empty fabric using clock for time accounting.
// A nil clock allocates a fresh one.
func NewFabric(clock *Clock) *Fabric {
	if clock == nil {
		clock = NewClock(Epoch)
	}
	return &Fabric{
		hosts: make(map[netaddr.IP]Handler),
		latency: func(src, dst netaddr.IP) time.Duration {
			return 500 * time.Microsecond
		},
		clock: clock,
	}
}

// Clock returns the fabric's clock.
func (f *Fabric) Clock() *Clock { return f.clock }

// Register binds ip to h, replacing any previous binding.
func (f *Fabric) Register(ip netaddr.IP, h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hosts[ip] = h
}

// Unregister removes the binding for ip.
func (f *Fabric) Unregister(ip netaddr.IP) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.hosts, ip)
}

// NumHosts returns the number of registered addresses.
func (f *Fabric) NumHosts() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.hosts)
}

// SetLatency installs a one-way delay model.
func (f *Fabric) SetLatency(fn LatencyFunc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = fn
}

// SetMetrics installs instrumentation hooks; nil disables them.
func (f *Fabric) SetMetrics(m *FabricMetrics) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.metrics = m
}

// SetLoss makes each datagram independently fail with probability p,
// returning ErrInjectedLoss. Used for failure-injection tests. The
// verdict is a pure hash of (seed, src, dst, flow, payload) — no shared
// generator state, so the loss pattern is a property of the traffic
// itself, identical at every worker count and free of the hot-path
// write lock a shared stream would need. Identical datagrams on the
// same flow share one fate; callers wanting independent retry draws
// vary the flow (see QueryFlow).
func (f *Fabric) SetLoss(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lossProb = p
	f.lossSeed = seed
}

// SetInterceptor installs a fault-injection hook consulted on every
// datagram and ping; nil removes it.
func (f *Fabric) SetInterceptor(ic Interceptor) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.interceptor = ic
}

// lossDraw returns the uniform [0,1) fate of one datagram.
func lossDraw(seed int64, src, dst netaddr.IP, flow uint64, payload []byte) float64 {
	h := xrand.Hash64(uint64(seed), uint64(src), uint64(dst), flow)
	return xrand.Frac(xrand.HashBytes(h, payload))
}

// Query sends payload from src to dst and returns the response and the
// round-trip time. The RTT is also charged to the fabric's clock so
// measurement campaigns consume simulated time. Query is QueryFlow with
// a zero flow identity.
func (f *Fabric) Query(src, dst netaddr.IP, payload []byte) (resp []byte, rtt time.Duration, err error) {
	return f.QueryFlow(src, dst, 0, payload)
}

// QueryFlow is Query with an explicit flow identity. The flow value
// feeds the loss draw and the interceptor but never the handler: two
// identical payloads sent on different flows (e.g. a retry after a
// timeout) draw independent loss fates, while replays on the same flow
// share one. Callers derive flows from stable measurement identities —
// never from arrival order.
func (f *Fabric) QueryFlow(src, dst netaddr.IP, flow uint64, payload []byte) (resp []byte, rtt time.Duration, err error) {
	f.mu.RLock()
	h, ok := f.hosts[dst]
	lat := f.latency
	lossProb, lossSeed := f.lossProb, f.lossSeed
	ic := f.interceptor
	m := f.metrics
	f.mu.RUnlock()
	if m != nil {
		m.Sent.Inc()
	}
	if !ok {
		if m != nil {
			m.Failed.Inc()
		}
		return nil, 0, ErrHostUnreachable
	}
	if lossProb > 0 && lossDraw(lossSeed, src, dst, flow, payload) < lossProb {
		if m != nil {
			m.Dropped.Inc()
		}
		return nil, 0, ErrInjectedLoss
	}
	var forged []byte
	var extra time.Duration
	if ic != nil {
		v := ic.Intercept(src, dst, flow, payload)
		if v.Drop {
			if m != nil {
				m.Dropped.Inc()
			}
			return nil, 0, ErrInjectedLoss
		}
		extra = v.ExtraRTT
		forged = v.Respond
	}
	rtt = lat(src, dst) + lat(dst, src) + extra
	if forged != nil {
		resp = forged
	} else {
		resp = h.ServePacket(src, dst, payload)
	}
	f.clock.Advance(rtt)
	if resp == nil {
		if m != nil {
			m.Failed.Inc()
		}
		return nil, rtt, ErrTimeout
	}
	if m != nil {
		m.Delivered.Inc()
		m.RTTms.Observe(float64(rtt) / float64(time.Millisecond))
	}
	return resp, rtt, nil
}

// Ping measures the round trip to dst without delivering a payload to
// the handler; it fails if no host is registered (mirroring a TCP RST
// vs. silence distinction is not modelled).
func (f *Fabric) Ping(src, dst netaddr.IP) (time.Duration, error) {
	f.mu.RLock()
	_, ok := f.hosts[dst]
	lat := f.latency
	m := f.metrics
	f.mu.RUnlock()
	if m != nil {
		m.Sent.Inc()
	}
	if !ok {
		if m != nil {
			m.Failed.Inc()
		}
		return 0, ErrHostUnreachable
	}
	rtt := lat(src, dst) + lat(dst, src)
	f.clock.Advance(rtt)
	if m != nil {
		m.Delivered.Inc()
		m.RTTms.Observe(float64(rtt) / float64(time.Millisecond))
	}
	return rtt, nil
}
