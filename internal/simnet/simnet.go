// Package simnet provides the simulated network fabric the measurement
// study runs over: a virtual clock and an in-memory datagram network
// that binds IPv4 addresses to request handlers, with a pluggable
// latency model and failure injection.
//
// The fabric is deliberately simple — request/response datagrams, no
// routing tables — because the study's probes (DNS queries, TCP pings)
// are all request/response. Wide-area path properties live in
// internal/wan; intra-cloud properties in internal/cloud. Both plug in
// through the fabric's latency function.
package simnet

import (
	"errors"
	"sync"
	"time"

	"cloudscope/internal/netaddr"
	"cloudscope/internal/xrand"
)

// Clock is a virtual clock. The zero value starts at a fixed epoch; use
// NewClock to choose a start time. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the default start of simulated time: the first day of the
// paper's packet capture (Tuesday, June 26, 2012, 00:00 UTC).
var Epoch = time.Date(2012, 6, 26, 0, 0, 0, 0, time.UTC)

// NewClock returns a clock set to start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now.IsZero() {
		c.now = Epoch
	}
	return c.now
}

// Advance moves simulated time forward by d. Negative d panics: the
// simulators assume monotone time.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("simnet: Advance by negative duration")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.now.IsZero() {
		c.now = Epoch
	}
	c.now = c.now.Add(d)
}

// Handler processes one datagram addressed to a registered IP and
// returns the response payload, or nil to drop the request.
type Handler interface {
	ServePacket(src, dst netaddr.IP, payload []byte) []byte
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(src, dst netaddr.IP, payload []byte) []byte

// ServePacket implements Handler.
func (f HandlerFunc) ServePacket(src, dst netaddr.IP, payload []byte) []byte {
	return f(src, dst, payload)
}

// LatencyFunc models one-way delay between two addresses.
type LatencyFunc func(src, dst netaddr.IP) time.Duration

// Errors returned by Query.
var (
	ErrHostUnreachable = errors.New("simnet: no host at destination")
	ErrTimeout         = errors.New("simnet: request timed out")
)

// Fabric is an in-memory datagram network. The zero value is not
// usable; construct with NewFabric.
type Fabric struct {
	mu       sync.RWMutex
	hosts    map[netaddr.IP]Handler
	latency  LatencyFunc
	lossProb float64
	lossRand *xrand.Rand
	clock    *Clock
}

// NewFabric returns an empty fabric using clock for time accounting.
// A nil clock allocates a fresh one.
func NewFabric(clock *Clock) *Fabric {
	if clock == nil {
		clock = NewClock(Epoch)
	}
	return &Fabric{
		hosts: make(map[netaddr.IP]Handler),
		latency: func(src, dst netaddr.IP) time.Duration {
			return 500 * time.Microsecond
		},
		clock: clock,
	}
}

// Clock returns the fabric's clock.
func (f *Fabric) Clock() *Clock { return f.clock }

// Register binds ip to h, replacing any previous binding.
func (f *Fabric) Register(ip netaddr.IP, h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hosts[ip] = h
}

// Unregister removes the binding for ip.
func (f *Fabric) Unregister(ip netaddr.IP) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.hosts, ip)
}

// NumHosts returns the number of registered addresses.
func (f *Fabric) NumHosts() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.hosts)
}

// SetLatency installs a one-way delay model.
func (f *Fabric) SetLatency(fn LatencyFunc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = fn
}

// SetLoss makes each Query independently fail with probability p,
// returning ErrTimeout. Used for failure-injection tests. The seed makes
// loss deterministic.
func (f *Fabric) SetLoss(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lossProb = p
	f.lossRand = xrand.New(seed)
}

// Query sends payload from src to dst and returns the response and the
// round-trip time. The RTT is also charged to the fabric's clock so
// measurement campaigns consume simulated time.
func (f *Fabric) Query(src, dst netaddr.IP, payload []byte) (resp []byte, rtt time.Duration, err error) {
	f.mu.RLock()
	h, ok := f.hosts[dst]
	lat := f.latency
	lossProb, lossRand := f.lossProb, f.lossRand
	f.mu.RUnlock()
	if !ok {
		return nil, 0, ErrHostUnreachable
	}
	if lossProb > 0 && lossRand != nil {
		f.mu.Lock()
		drop := lossRand.Bool(lossProb)
		f.mu.Unlock()
		if drop {
			return nil, 0, ErrTimeout
		}
	}
	rtt = lat(src, dst) + lat(dst, src)
	resp = h.ServePacket(src, dst, payload)
	f.clock.Advance(rtt)
	if resp == nil {
		return nil, rtt, ErrTimeout
	}
	return resp, rtt, nil
}

// Ping measures the round trip to dst without delivering a payload to
// the handler; it fails if no host is registered (mirroring a TCP RST
// vs. silence distinction is not modelled).
func (f *Fabric) Ping(src, dst netaddr.IP) (time.Duration, error) {
	f.mu.RLock()
	_, ok := f.hosts[dst]
	lat := f.latency
	f.mu.RUnlock()
	if !ok {
		return 0, ErrHostUnreachable
	}
	rtt := lat(src, dst) + lat(dst, src)
	f.clock.Advance(rtt)
	return rtt, nil
}
