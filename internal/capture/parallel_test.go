package capture

import (
	"bytes"
	"crypto/sha256"
	"reflect"
	"testing"

	"cloudscope/internal/parallel"
	"cloudscope/internal/pcapio"
)

// genBytes renders one capture to pcap bytes plus its ground truth.
func genBytes(t testing.TB, cfg Config) ([]byte, *Truth) {
	t.Helper()
	var buf bytes.Buffer
	g := NewGenerator(cfg, capWorld)
	truth, err := g.Generate(pcapio.NewWriter(&buf, cfg.Snaplen))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), truth
}

// TestGenerateWorkerCountInvariant checks the emitted pcap and ground
// truth are byte-identical at every worker bound AND every shard
// layout. Flows draw from per-flow sub-streams keyed by (seed, flow
// index) and events sort under a strict total order, so the capture is
// a pure function of seed + world; the golden here is the sequential
// default-layout run and every other (workers, shard-size) combination
// must reproduce it exactly. This replaces the earlier weaker golden
// that compared worker counts only within a fixed shard layout —
// per-shard streams made each layout its own universe, which this test
// would have caught as a difference. Run under -race this doubles as
// the generator's concurrency stress test.
func TestGenerateWorkerCountInvariant(t *testing.T) {
	cfg := testCfg(900)
	cfg.Par = parallel.Options{Workers: 1, ShardSize: 0}
	golden, goldenTruth := genBytes(t, cfg)
	goldenSum := sha256.Sum256(golden)
	for _, workers := range []int{1, 2, 4} {
		for _, shard := range []int{0, 1, 23, 64} {
			if workers == 1 && shard == 0 {
				continue
			}
			pcfg := cfg
			pcfg.Par = parallel.Options{Workers: workers, ShardSize: shard}
			got, truth := genBytes(t, pcfg)
			if sha256.Sum256(got) != goldenSum {
				t.Errorf("pcap bytes differ at Workers=%d ShardSize=%d", workers, shard)
			}
			if !reflect.DeepEqual(truth, goldenTruth) {
				t.Errorf("ground truth differs at Workers=%d ShardSize=%d", workers, shard)
			}
		}
	}
}

// TestAnalyzeWorkerCountInvariant checks the analyzer's speculative
// pre-decode fan-out reconstructs exactly the sequential analysis.
func TestAnalyzeWorkerCountInvariant(t *testing.T) {
	raw, _ := genBytes(t, testCfg(900))
	golden, err := Analyze(bytes.NewReader(raw), capWorld.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		for _, shard := range []int{1, 64} {
			got, err := AnalyzePar(bytes.NewReader(raw), capWorld.Ranges,
				parallel.Options{Workers: workers, ShardSize: shard})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, golden) {
				t.Errorf("analysis differs at Workers=%d ShardSize=%d", workers, shard)
			}
		}
	}
}
