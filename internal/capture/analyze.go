package capture

import (
	"errors"
	"io"
	"sort"
	"time"

	"cloudscope/internal/httpwire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/packet"
	"cloudscope/internal/parallel"
	"cloudscope/internal/pcapio"
	"cloudscope/internal/tlswire"
)

// FlowRecord is the analyzer's per-connection summary — the conn.log
// row of the Bro stand-in.
type FlowRecord struct {
	Client, Server netaddr.IP
	ServerPort     uint16
	Proto          uint8
	Cloud          ipranges.Provider
	Kind           Kind
	First, Last    time.Time
	Packets        int

	// Sequence-number bookkeeping for TCP volume recovery.
	isnC, isnS uint32
	haveSynC   bool
	haveSynS   bool
	finC, finS uint32
	haveFinC   bool
	haveFinS   bool

	udpBytes int64 // orig-len accounting for non-TCP

	// Application-layer extractions.
	Host          string // HTTP Host or TLS SNI
	CertCN        string // TLS certificate common name
	ContentType   string
	ContentLength int64

	sawClientPayload bool
	sawServerPayload bool
}

// Bytes returns the connection's application byte volume: for TCP the
// SYN/FIN sequence delta per direction (Bro's method), otherwise the
// wire bytes observed.
func (f *FlowRecord) Bytes() int64 {
	if f.Proto == packet.ProtoTCP && f.haveSynC && f.haveFinC && f.haveSynS && f.haveFinS {
		up := int64(f.finC - f.isnC - 1) // uint32 arithmetic handles wrap
		down := int64(f.finS - f.isnS - 1)
		if up >= 0 && down >= 0 {
			return up + down
		}
	}
	return f.udpBytes
}

// Duration returns the observed flow duration.
func (f *FlowRecord) Duration() time.Duration { return f.Last.Sub(f.First) }

// Domain returns the registered domain the flow is attributed to: the
// HTTP hostname or TLS SNI when present, the certificate CN otherwise.
func (f *FlowRecord) Domain() string {
	name := f.Host
	if name == "" {
		name = f.CertCN
	}
	if name == "" {
		return ""
	}
	if name[0] == '*' && len(name) > 2 {
		name = name[2:]
	}
	return DomainOf(name)
}

// Analysis aggregates a full capture.
type Analysis struct {
	Flows      []*FlowRecord
	NonIPv4    int
	UnknownIP  int // unknown transports (Bro's "other")
	DecodeErrs int
}

// flowKey identifies a connection with the client side first.
type flowKey struct {
	client, server netaddr.IP
	cport, sport   uint16
	proto          uint8
}

// Analyze reads a pcap stream and builds per-flow records. Only flows
// whose non-campus endpoint is inside the published cloud ranges are
// kept — the same filter the border tap applied.
func Analyze(r io.Reader, ranges *ipranges.List) (*Analysis, error) {
	return AnalyzePar(r, ranges, parallel.Options{Workers: 1})
}

// predecode is the parallel phase's per-packet result: everything the
// sequential assembly step needs that is computable from one packet
// alone. App-layer extractions are speculative — computed for every
// payload-bearing TCP packet, used only when assembly decides the
// packet is the first payload in its direction. The extraction
// functions are pure on the payload, so the speculative result equals
// what the streaming analyzer computed in-line.
type predecode struct {
	p              *packet.Packet
	bad            bool // decode failure, counted and skipped
	unknown        bool // packet.ErrUnknownTransport
	clientToServer bool
	client, server netaddr.IP
	cport, sport   uint16
	cloud          ipranges.Provider
	inRange        bool
	key            flowKey
	kind           Kind

	sni    string
	sniOK  bool
	host   string
	hostOK bool
	certCN string
	certOK bool
	ctype  string
	clen   int64
	respOK bool
}

func predecodeRecord(ranges *ipranges.List, rec pcapio.Record) (d predecode) {
	p, derr := packet.Decode(rec.Data)
	if p == nil {
		d.bad = true
		return d
	}
	d.p = p
	d.unknown = errors.Is(derr, packet.ErrUnknownTransport)
	d.clientToServer = InCampus(p.IPv4.Src)
	fl := p.Flow()
	if d.clientToServer {
		d.client, d.server, d.cport, d.sport = fl.Src, fl.Dst, fl.SrcPort, fl.DstPort
	} else {
		d.client, d.server, d.cport, d.sport = fl.Dst, fl.Src, fl.DstPort, fl.SrcPort
	}
	entry, okRange := ranges.Lookup(d.server)
	if !okRange {
		return d // not cloud traffic; the tap would not have kept it
	}
	d.inRange = true
	d.cloud = entry.Provider
	if d.cloud == ipranges.CloudFront {
		d.cloud = ipranges.EC2
	}
	d.key = flowKey{client: d.client, server: d.server, cport: d.cport, sport: d.sport, proto: p.IPv4.Protocol}
	// The per-packet kind matches the flow's for branch selection: a
	// flow is KindHTTPS iff its server port is 443, and the only
	// in-flight reclassification (OtherTCP → HTTP on a nonstandard
	// port) keeps both sides in the non-HTTPS branches.
	d.kind = classify(p.IPv4.Protocol, d.sport)
	if d.unknown || p.IPv4.Protocol != packet.ProtoTCP || len(p.Payload) == 0 {
		return d
	}
	if d.clientToServer {
		if d.kind == KindHTTPS {
			d.sni, d.sniOK = tlswire.SNI(p.Payload)
		} else if req, ok := httpwire.ParseRequest(p.Payload); ok {
			d.host, d.hostOK = req.Host, true
		}
	} else {
		if d.kind == KindHTTPS {
			// Walk the server's handshake flight looking for the
			// certificate.
			rest := p.Payload
			for len(rest) > 5 {
				if cn, ok := tlswire.CertificateCN(rest); ok {
					d.certCN, d.certOK = cn, true
					break
				}
				_, _, next, err := tlswire.ParseRecord(rest)
				if err != nil || next == nil {
					break
				}
				rest = next
			}
		} else if resp, ok := httpwire.ParseResponse(p.Payload); ok {
			d.ctype, d.clen, d.respOK = resp.ContentType, resp.ContentLength, true
		}
	}
	return d
}

// AnalyzePar is Analyze with the per-packet work fanned out over opt:
// packet decode, range lookup, and speculative app-layer parsing are
// pure, so they shard freely; flow assembly — the only stateful step —
// stays sequential in capture order. The result is byte-identical to
// the sequential analyzer at every worker count.
func AnalyzePar(r io.Reader, ranges *ipranges.List, opt parallel.Options) (*Analysis, error) {
	rd, err := pcapio.NewReader(r)
	if err != nil {
		return nil, err
	}
	var recs []pcapio.Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}

	pre := make([]predecode, len(recs))
	if err := parallel.Run(opt, len(recs), func(sh parallel.Shard) error {
		for i := sh.Lo; i < sh.Hi; i++ {
			pre[i] = predecodeRecord(ranges, recs[i])
		}
		return nil
	}); err != nil {
		return nil, err // only worker panics land here
	}

	a := &Analysis{}
	table := map[flowKey]*FlowRecord{}
	for i := range recs {
		rec, d := recs[i], &pre[i]
		if d.bad {
			a.DecodeErrs++
			continue
		}
		if !d.inRange {
			continue
		}
		fr := table[d.key]
		if fr == nil {
			fr = &FlowRecord{
				Client: d.client, Server: d.server, ServerPort: d.sport,
				Proto: d.p.IPv4.Protocol, Cloud: d.cloud,
				First: rec.Time, Last: rec.Time,
				ContentLength: -1,
			}
			fr.Kind = d.kind
			table[d.key] = fr
			a.Flows = append(a.Flows, fr)
		}
		if rec.Time.Before(fr.First) {
			fr.First = rec.Time
		}
		if rec.Time.After(fr.Last) {
			fr.Last = rec.Time
		}
		fr.Packets++
		if d.unknown {
			a.UnknownIP++
			fr.udpBytes += int64(rec.OrigLen)
			continue
		}
		switch d.p.IPv4.Protocol {
		case packet.ProtoTCP:
			analyzeTCP(fr, d)
		default:
			fr.udpBytes += int64(rec.OrigLen)
		}
	}
	return a, nil
}

func classify(proto uint8, serverPort uint16) Kind {
	switch proto {
	case packet.ProtoICMP:
		return KindICMP
	case packet.ProtoUDP:
		if serverPort == 53 {
			return KindDNS
		}
		return KindOtherUDP
	case packet.ProtoTCP:
		switch serverPort {
		case 80:
			return KindHTTP
		case 443:
			return KindHTTPS
		default:
			return KindOtherTCP
		}
	}
	return KindOtherUDP
}

// analyzeTCP folds one pre-decoded TCP packet into its flow record,
// committing the speculative extractions when the packet turns out to
// be the first payload in its direction.
func analyzeTCP(fr *FlowRecord, d *predecode) {
	t := d.p.TCP
	if t.Flags&packet.FlagSYN != 0 {
		if d.clientToServer {
			fr.isnC, fr.haveSynC = t.Seq, true
		} else {
			fr.isnS, fr.haveSynS = t.Seq, true
		}
	}
	if t.Flags&packet.FlagFIN != 0 {
		if d.clientToServer {
			fr.finC, fr.haveFinC = t.Seq, true
		} else {
			fr.finS, fr.haveFinS = t.Seq, true
		}
	}
	if len(d.p.Payload) == 0 {
		return
	}
	if d.clientToServer && !fr.sawClientPayload {
		fr.sawClientPayload = true
		if fr.Kind == KindHTTPS {
			if d.sniOK {
				fr.Host = d.sni
			}
		} else if d.hostOK {
			fr.Host = d.host
			if fr.Kind == KindOtherTCP {
				fr.Kind = KindHTTP // HTTP on a nonstandard port
			}
		}
	}
	if !d.clientToServer && !fr.sawServerPayload {
		fr.sawServerPayload = true
		switch fr.Kind {
		case KindHTTPS:
			if d.certOK {
				fr.CertCN = d.certCN
			}
		default:
			if d.respOK {
				fr.ContentType = d.ctype
				fr.ContentLength = d.clen
			}
		}
	}
}

// ---- Aggregations the paper's tables report ----

// CloudShare is Table 1: per-cloud byte and flow percentages.
func (a *Analysis) CloudShare() (bytesPct, flowsPct map[ipranges.Provider]float64) {
	bytesPct = map[ipranges.Provider]float64{}
	flowsPct = map[ipranges.Provider]float64{}
	var totalBytes float64
	for _, f := range a.Flows {
		bytesPct[f.Cloud] += float64(f.Bytes())
		flowsPct[f.Cloud]++
		totalBytes += float64(f.Bytes())
	}
	for c := range bytesPct {
		bytesPct[c] = 100 * bytesPct[c] / totalBytes
		flowsPct[c] = 100 * flowsPct[c] / float64(len(a.Flows))
	}
	return bytesPct, flowsPct
}

// ProtocolShare is Table 2: per-protocol byte/flow percentages for one
// cloud ("" for the whole capture).
func (a *Analysis) ProtocolShare(cloud ipranges.Provider) (bytesPct, flowsPct map[Kind]float64) {
	bytesPct = map[Kind]float64{}
	flowsPct = map[Kind]float64{}
	var totalBytes, totalFlows float64
	for _, f := range a.Flows {
		if cloud != "" && f.Cloud != cloud {
			continue
		}
		bytesPct[f.Kind] += float64(f.Bytes())
		flowsPct[f.Kind]++
		totalBytes += float64(f.Bytes())
		totalFlows++
	}
	for k := range bytesPct {
		bytesPct[k] = 100 * bytesPct[k] / totalBytes
	}
	for k := range flowsPct {
		flowsPct[k] = 100 * flowsPct[k] / totalFlows
	}
	return bytesPct, flowsPct
}

// DomainVolume is one row of Table 5.
type DomainVolume struct {
	Domain string
	Cloud  ipranges.Provider
	Bytes  int64
	Flows  int
}

// TopDomains returns HTTP(S) domains by volume for one cloud.
func (a *Analysis) TopDomains(cloud ipranges.Provider, n int) []DomainVolume {
	agg := map[string]*DomainVolume{}
	for _, f := range a.Flows {
		if f.Cloud != cloud || (f.Kind != KindHTTP && f.Kind != KindHTTPS) {
			continue
		}
		d := f.Domain()
		if d == "" {
			continue
		}
		dv := agg[d]
		if dv == nil {
			dv = &DomainVolume{Domain: d, Cloud: cloud}
			agg[d] = dv
		}
		dv.Bytes += f.Bytes()
		dv.Flows++
	}
	out := make([]DomainVolume, 0, len(agg))
	for _, dv := range agg {
		out = append(out, *dv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Domain < out[j].Domain
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// HTTPTotalBytes returns total HTTP(S) volume across both clouds.
func (a *Analysis) HTTPTotalBytes() int64 {
	var total int64
	for _, f := range a.Flows {
		if f.Kind == KindHTTP || f.Kind == KindHTTPS {
			total += f.Bytes()
		}
	}
	return total
}

// ContentTypeRow is one row of Table 6.
type ContentTypeRow struct {
	Type  string
	Bytes int64
	Count int
	Mean  float64
	Max   int64
}

// ContentTypes aggregates HTTP response bodies by Content-Type.
func (a *Analysis) ContentTypes() []ContentTypeRow {
	agg := map[string]*ContentTypeRow{}
	for _, f := range a.Flows {
		if f.Kind != KindHTTP || f.ContentType == "" || f.ContentLength < 0 {
			continue
		}
		row := agg[f.ContentType]
		if row == nil {
			row = &ContentTypeRow{Type: f.ContentType}
			agg[f.ContentType] = row
		}
		row.Bytes += f.ContentLength
		row.Count++
		if f.ContentLength > row.Max {
			row.Max = f.ContentLength
		}
	}
	out := make([]ContentTypeRow, 0, len(agg))
	for _, row := range agg {
		row.Mean = float64(row.Bytes) / float64(row.Count)
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	return out
}

// FlowStats returns per-domain flow counts and individual flow sizes
// for one (cloud, kind) pair — the inputs to Figure 3's CDFs.
func (a *Analysis) FlowStats(cloud ipranges.Provider, kind Kind) (flowsPerDomain []float64, flowSizes []float64) {
	perDomain := map[string]int{}
	for _, f := range a.Flows {
		if f.Cloud != cloud || f.Kind != kind {
			continue
		}
		if d := f.Domain(); d != "" {
			perDomain[d]++
		}
		flowSizes = append(flowSizes, float64(f.Bytes()))
	}
	for _, n := range perDomain {
		flowsPerDomain = append(flowsPerDomain, float64(n))
	}
	return flowsPerDomain, flowSizes
}
