package capture

import (
	"errors"
	"io"
	"sort"
	"time"

	"cloudscope/internal/httpwire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/packet"
	"cloudscope/internal/parallel"
	"cloudscope/internal/pcapio"
	"cloudscope/internal/telemetry"
	"cloudscope/internal/tlswire"
)

// FlowRecord is the analyzer's per-connection summary — the conn.log
// row of the Bro stand-in.
type FlowRecord struct {
	Client, Server netaddr.IP
	ServerPort     uint16
	Proto          uint8
	Cloud          ipranges.Provider
	Kind           Kind
	First, Last    time.Time
	Packets        int

	// RST reports a reset seen on the connection — the capture-fault
	// engine forges these mid-stream, and real captures are full of
	// them.
	RST bool
	// OutOfOrder reports an observable segment re-ordering: a payload
	// segment arrived behind the furthest sequence point already seen
	// in its direction.
	OutOfOrder bool

	// Sequence-number bookkeeping for TCP volume recovery.
	isnC, isnS uint32
	haveSynC   bool
	haveSynS   bool
	finC, finS uint32
	haveFinC   bool
	haveFinS   bool
	// Furthest sequence end observed per direction (seq + payload),
	// the volume basis when the teardown was never captured.
	endC, endS uint32
	haveEndC   bool
	haveEndS   bool

	udpBytes int64 // orig-len accounting for non-TCP

	// Application-layer extractions.
	Host          string // HTTP Host or TLS SNI
	CertCN        string // TLS certificate common name
	ContentType   string
	ContentLength int64

	sawClientPayload bool
	sawServerPayload bool
}

// Bytes returns the connection's application byte volume: for TCP the
// SYN/FIN sequence delta per direction (Bro's method), otherwise the
// wire bytes observed. A partial TCP flow — teardown truncated, reset
// mid-stream, or tail records dropped — falls back to the furthest
// sequence point seen past each SYN, the best lower bound a chopped
// capture supports.
func (f *FlowRecord) Bytes() int64 {
	if f.Proto != packet.ProtoTCP {
		return f.udpBytes
	}
	if f.haveSynC && f.haveFinC && f.haveSynS && f.haveFinS {
		up := int64(f.finC - f.isnC - 1) // uint32 arithmetic handles wrap
		down := int64(f.finS - f.isnS - 1)
		if up >= 0 && down >= 0 {
			return up + down
		}
	}
	var total int64
	if f.haveSynC && f.haveEndC {
		if rel := int64(int32(f.endC - f.isnC - 1)); rel > 0 {
			total += rel
		}
	}
	if f.haveSynS && f.haveEndS {
		if rel := int64(int32(f.endS - f.isnS - 1)); rel > 0 {
			total += rel
		}
	}
	return total
}

// Complete reports whether the flow's volume is exactly recoverable:
// for TCP, that both SYNs and both FINs were captured (Bro's "SF"
// connection state); other transports are byte-accounted per record
// and always complete.
func (f *FlowRecord) Complete() bool {
	if f.Proto != packet.ProtoTCP {
		return true
	}
	return f.haveSynC && f.haveFinC && f.haveSynS && f.haveFinS
}

// Symptom classifies how the capture observed the flow, in fault
// priority order: a reset outranks re-ordering outranks a missing
// endpoint. Healthy flows (and non-TCP, always exactly accounted)
// report "complete".
func (f *FlowRecord) Symptom() string {
	if f.Proto != packet.ProtoTCP {
		return "complete"
	}
	switch {
	case f.RST:
		return "rst"
	case f.OutOfOrder:
		return "reordered"
	case !f.Complete():
		return "partial"
	}
	return "complete"
}

// Duration returns the observed flow duration.
func (f *FlowRecord) Duration() time.Duration { return f.Last.Sub(f.First) }

// Domain returns the registered domain the flow is attributed to: the
// HTTP hostname or TLS SNI when present, the certificate CN otherwise.
func (f *FlowRecord) Domain() string {
	name := f.Host
	if name == "" {
		name = f.CertCN
	}
	if name == "" {
		return ""
	}
	if name[0] == '*' && len(name) > 2 {
		name = name[2:]
	}
	return DomainOf(name)
}

// Analysis aggregates a full capture.
type Analysis struct {
	Flows      []*FlowRecord
	NonIPv4    int
	UnknownIP  int // unknown transports (Bro's "other")
	DecodeErrs int
	Records    int // pcap records read (decode failures included)

	// Fault-symptom flow counts, priority-exclusive per flow in the
	// same order as FlowRecord.Symptom: a reset flow counts only as
	// RSTFlows even though its teardown is also missing.
	RSTFlows   int
	Reordered  int
	PartialTCP int
}

// flowKey identifies a connection with the client side first.
type flowKey struct {
	client, server netaddr.IP
	cport, sport   uint16
	proto          uint8
}

// Analyze reads a pcap stream and builds per-flow records. Only flows
// whose non-campus endpoint is inside the published cloud ranges are
// kept — the same filter the border tap applied.
func Analyze(r io.Reader, ranges *ipranges.List) (*Analysis, error) {
	return AnalyzeOpts(r, ranges, AnalyzeOptions{Par: parallel.Options{Workers: 1}})
}

// AnalyzeOptions parameterizes AnalyzeOpts beyond the stream itself.
type AnalyzeOptions struct {
	// Par bounds the parallel pre-decode phase.
	Par parallel.Options
	// Completeness, when non-nil, receives capture accounting: stage
	// "capture/flows" counts one attempt per flow under its symptom
	// vantage (complete/partial/rst/reordered) — partial flows whose
	// volume was recovered from sequence bookkeeping count as
	// succeeded-with-retry, volume-less ones as abandoned — and stage
	// "capture/frames" counts records against decode failures.
	Completeness *telemetry.Completeness
}

// predecode is the parallel phase's per-packet result: everything the
// sequential assembly step needs that is computable from one packet
// alone, distilled from a stack-local header decode (no *Packet
// allocation; payload is a view into the block's buffer). The full
// Packet is not retained — assembly only ever reads the flow key, the
// TCP sequence bookkeeping, and the payload, and dropping the rest
// keeps the flat pre-decode slab small enough that peak heap tracks
// the pcap, not the packet count. Decode stops at the transport layer;
// app-layer parsing is deferred to assembly, which knows whether a
// packet is the first payload in its direction and parses exactly
// those. The extraction functions are pure on the payload, so
// deferring them changes no output: the old speculative per-packet
// parses were only ever read for first-payload packets anyway.
type predecode struct {
	payload        []byte // view into the block buffer; not retained past assembly
	key            flowKey
	kind           Kind
	cloud          ipranges.Provider
	seq            uint32 // TCP sequence number (undefined otherwise)
	tcpFlags       uint8
	bad            bool // decode failure, counted and skipped
	unknown        bool // packet.ErrUnknownTransport
	clientToServer bool
	inRange        bool
}

func predecodeRecord(d *predecode, ranges *ipranges.List, data []byte) {
	var p packet.Packet
	derr := packet.DecodeHeaders(&p, data)
	d.unknown = errors.Is(derr, packet.ErrUnknownTransport)
	if derr != nil && !d.unknown {
		d.bad = true
		return
	}
	d.clientToServer = InCampus(p.IPv4.Src)
	fl := p.Flow()
	var client, server netaddr.IP
	var cport, sport uint16
	if d.clientToServer {
		client, server, cport, sport = fl.Src, fl.Dst, fl.SrcPort, fl.DstPort
	} else {
		client, server, cport, sport = fl.Dst, fl.Src, fl.DstPort, fl.SrcPort
	}
	entry, okRange := ranges.Lookup(server)
	if !okRange {
		return // not cloud traffic; the tap would not have kept it
	}
	d.inRange = true
	d.cloud = entry.Provider
	if d.cloud == ipranges.CloudFront {
		d.cloud = ipranges.EC2
	}
	d.key = flowKey{client: client, server: server, cport: cport, sport: sport, proto: p.IPv4.Protocol}
	d.kind = classify(p.IPv4.Protocol, sport)
	d.seq = p.TCP.Seq
	d.tcpFlags = p.TCP.Flags
	d.payload = p.Payload
}

// AnalyzePar is Analyze with the per-packet work fanned out over opt.
func AnalyzePar(r io.Reader, ranges *ipranges.List, opt parallel.Options) (*Analysis, error) {
	return AnalyzeOpts(r, ranges, AnalyzeOptions{Par: opt})
}

// AnalyzeOpts is the full-control analyzer entry point. The pcap
// stream is read block-wise into pooled buffers (no per-record
// allocation), header decode and range lookup shard freely over blocks,
// and flow assembly — the only stateful step — stays sequential in
// capture order, releasing each block back to the pool as soon as its
// records are folded in. The result is byte-identical to the
// sequential analyzer at every worker count and shard layout, and
// completeness accounting (flows iterated in capture order) inherits
// the same invariance.
func AnalyzeOpts(r io.Reader, ranges *ipranges.List, aopt AnalyzeOptions) (*Analysis, error) {
	opt := aopt.Par
	rd, err := pcapio.NewReader(r)
	if err != nil {
		return nil, err
	}
	var blocks []*pcapio.Block
	release := func() {
		for _, b := range blocks {
			if b != nil {
				b.Release()
			}
		}
	}
	total := 0
	for {
		b := pcapio.GetBlock()
		n, rerr := rd.ReadBlock(b, 0)
		if n > 0 {
			blocks = append(blocks, b)
			total += n
		} else {
			b.Release()
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			release()
			return nil, rerr
		}
	}

	// offs[i] is the packet index of blocks[i]'s first record, so the
	// parallel phase can write results straight into one flat slice.
	offs := make([]int, len(blocks)+1)
	for i, b := range blocks {
		offs[i+1] = offs[i] + b.Len()
	}
	pre := make([]predecode, total)
	if err := parallel.Run(opt, len(blocks), func(sh parallel.Shard) error {
		for bi := sh.Lo; bi < sh.Hi; bi++ {
			b, base := blocks[bi], offs[bi]
			for ri := 0; ri < b.Len(); ri++ {
				predecodeRecord(&pre[base+ri], ranges, b.Data(ri))
			}
		}
		return nil
	}); err != nil {
		release()
		return nil, err // only worker panics land here
	}

	a := &Analysis{}
	table := map[flowKey]*FlowRecord{}
	for bi, b := range blocks {
		base := offs[bi]
		for ri := 0; ri < b.Len(); ri++ {
			d := &pre[base+ri]
			if d.bad {
				a.DecodeErrs++
				continue
			}
			if !d.inRange {
				continue
			}
			t := b.Time(ri)
			fr := table[d.key]
			if fr == nil {
				fr = &FlowRecord{
					Client: d.key.client, Server: d.key.server, ServerPort: d.key.sport,
					Proto: d.key.proto, Cloud: d.cloud,
					First: t, Last: t,
					ContentLength: -1,
				}
				fr.Kind = d.kind
				table[d.key] = fr
				a.Flows = append(a.Flows, fr)
			}
			if t.Before(fr.First) {
				fr.First = t
			}
			if t.After(fr.Last) {
				fr.Last = t
			}
			fr.Packets++
			if d.unknown {
				a.UnknownIP++
				fr.udpBytes += int64(b.OrigLen(ri))
				continue
			}
			switch d.key.proto {
			case packet.ProtoTCP:
				analyzeTCP(fr, d)
			default:
				fr.udpBytes += int64(b.OrigLen(ri))
			}
		}
		// This block's payload views have been parsed into owned
		// strings; nothing downstream aliases its buffer.
		b.Release()
		blocks[bi] = nil
	}
	a.Records = total
	for _, fr := range a.Flows {
		sym := fr.Symptom()
		switch sym {
		case "rst":
			a.RSTFlows++
		case "reordered":
			a.Reordered++
		case "partial":
			a.PartialTCP++
		}
		if tel := aopt.Completeness; tel != nil {
			c := telemetry.Counts{Attempted: 1}
			if fr.Complete() {
				c.Succeeded = 1
			} else if fr.Bytes() > 0 {
				c.Succeeded, c.Retried = 1, 1 // recovered from seq bookkeeping
			} else {
				c.Abandoned = 1 // no volume basis survived the faults
			}
			tel.Merge("capture/flows", sym, c)
		}
	}
	aopt.Completeness.Merge("capture/frames", "decode", telemetry.Counts{
		Attempted: int64(total),
		Succeeded: int64(total - a.DecodeErrs),
		Abandoned: int64(a.DecodeErrs),
	})
	return a, nil
}

func classify(proto uint8, serverPort uint16) Kind {
	switch proto {
	case packet.ProtoICMP:
		return KindICMP
	case packet.ProtoUDP:
		if serverPort == 53 {
			return KindDNS
		}
		return KindOtherUDP
	case packet.ProtoTCP:
		switch serverPort {
		case 80:
			return KindHTTP
		case 443:
			return KindHTTPS
		default:
			return KindOtherTCP
		}
	}
	return KindOtherUDP
}

// analyzeTCP folds one pre-decoded TCP packet into its flow record.
// App-layer parsing happens here, lazily: only the first payload packet
// in each direction is parsed — at most two parses per flow instead of
// one per payload packet. The parsers are pure functions of the payload
// and every extraction they return is an owned copy, so nothing here
// retains a view into the packet's (pooled) block buffer.
func analyzeTCP(fr *FlowRecord, d *predecode) {
	if d.tcpFlags&packet.FlagSYN != 0 {
		if d.clientToServer {
			fr.isnC, fr.haveSynC = d.seq, true
		} else {
			fr.isnS, fr.haveSynS = d.seq, true
		}
	}
	if d.tcpFlags&packet.FlagFIN != 0 {
		if d.clientToServer {
			fr.finC, fr.haveFinC = d.seq, true
		} else {
			fr.finS, fr.haveFinS = d.seq, true
		}
	}
	if d.tcpFlags&packet.FlagRST != 0 {
		fr.RST = true
	}
	// Track the furthest sequence point per direction (sequence-space
	// comparison, wrap-safe). A payload segment landing at or behind
	// the high-water mark is an observable re-ordering.
	end := d.seq + uint32(len(d.payload))
	if d.clientToServer {
		if fr.haveEndC && len(d.payload) > 0 && int32(end-fr.endC) <= 0 {
			fr.OutOfOrder = true
		}
		if !fr.haveEndC || int32(end-fr.endC) > 0 {
			fr.endC, fr.haveEndC = end, true
		}
	} else {
		if fr.haveEndS && len(d.payload) > 0 && int32(end-fr.endS) <= 0 {
			fr.OutOfOrder = true
		}
		if !fr.haveEndS || int32(end-fr.endS) > 0 {
			fr.endS, fr.haveEndS = end, true
		}
	}
	payload := d.payload
	if len(payload) == 0 {
		return
	}
	if d.clientToServer && !fr.sawClientPayload {
		fr.sawClientPayload = true
		if fr.Kind == KindHTTPS {
			if sni, ok := tlswire.SNI(payload); ok {
				fr.Host = sni
			}
		} else if req, ok := httpwire.ParseRequest(payload); ok {
			fr.Host = req.Host
			if fr.Kind == KindOtherTCP {
				fr.Kind = KindHTTP // HTTP on a nonstandard port
			}
		}
	}
	if !d.clientToServer && !fr.sawServerPayload {
		fr.sawServerPayload = true
		switch fr.Kind {
		case KindHTTPS:
			// Walk the server's handshake flight looking for the
			// certificate.
			rest := payload
			for len(rest) > 5 {
				if cn, ok := tlswire.CertificateCN(rest); ok {
					fr.CertCN = cn
					break
				}
				_, _, next, err := tlswire.ParseRecord(rest)
				if err != nil || next == nil {
					break
				}
				rest = next
			}
		default:
			if resp, ok := httpwire.ParseResponse(payload); ok {
				fr.ContentType = resp.ContentType
				fr.ContentLength = resp.ContentLength
			}
		}
	}
}

// ---- Aggregations the paper's tables report ----

// CloudShare is Table 1: per-cloud byte and flow percentages.
func (a *Analysis) CloudShare() (bytesPct, flowsPct map[ipranges.Provider]float64) {
	bytesPct = map[ipranges.Provider]float64{}
	flowsPct = map[ipranges.Provider]float64{}
	var totalBytes float64
	for _, f := range a.Flows {
		bytesPct[f.Cloud] += float64(f.Bytes())
		flowsPct[f.Cloud]++
		totalBytes += float64(f.Bytes())
	}
	for c := range bytesPct {
		bytesPct[c] = 100 * bytesPct[c] / totalBytes
		flowsPct[c] = 100 * flowsPct[c] / float64(len(a.Flows))
	}
	return bytesPct, flowsPct
}

// ProtocolShare is Table 2: per-protocol byte/flow percentages for one
// cloud ("" for the whole capture).
func (a *Analysis) ProtocolShare(cloud ipranges.Provider) (bytesPct, flowsPct map[Kind]float64) {
	bytesPct = map[Kind]float64{}
	flowsPct = map[Kind]float64{}
	var totalBytes, totalFlows float64
	for _, f := range a.Flows {
		if cloud != "" && f.Cloud != cloud {
			continue
		}
		bytesPct[f.Kind] += float64(f.Bytes())
		flowsPct[f.Kind]++
		totalBytes += float64(f.Bytes())
		totalFlows++
	}
	for k := range bytesPct {
		bytesPct[k] = 100 * bytesPct[k] / totalBytes
	}
	for k := range flowsPct {
		flowsPct[k] = 100 * flowsPct[k] / totalFlows
	}
	return bytesPct, flowsPct
}

// DomainVolume is one row of Table 5.
type DomainVolume struct {
	Domain string
	Cloud  ipranges.Provider
	Bytes  int64
	Flows  int
}

// TopDomains returns HTTP(S) domains by volume for one cloud.
func (a *Analysis) TopDomains(cloud ipranges.Provider, n int) []DomainVolume {
	agg := map[string]*DomainVolume{}
	for _, f := range a.Flows {
		if f.Cloud != cloud || (f.Kind != KindHTTP && f.Kind != KindHTTPS) {
			continue
		}
		d := f.Domain()
		if d == "" {
			continue
		}
		dv := agg[d]
		if dv == nil {
			dv = &DomainVolume{Domain: d, Cloud: cloud}
			agg[d] = dv
		}
		dv.Bytes += f.Bytes()
		dv.Flows++
	}
	out := make([]DomainVolume, 0, len(agg))
	for _, dv := range agg {
		out = append(out, *dv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Domain < out[j].Domain
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// HTTPTotalBytes returns total HTTP(S) volume across both clouds.
func (a *Analysis) HTTPTotalBytes() int64 {
	var total int64
	for _, f := range a.Flows {
		if f.Kind == KindHTTP || f.Kind == KindHTTPS {
			total += f.Bytes()
		}
	}
	return total
}

// ContentTypeRow is one row of Table 6.
type ContentTypeRow struct {
	Type  string
	Bytes int64
	Count int
	Mean  float64
	Max   int64
}

// ContentTypes aggregates HTTP response bodies by Content-Type.
func (a *Analysis) ContentTypes() []ContentTypeRow {
	agg := map[string]*ContentTypeRow{}
	for _, f := range a.Flows {
		if f.Kind != KindHTTP || f.ContentType == "" || f.ContentLength < 0 {
			continue
		}
		row := agg[f.ContentType]
		if row == nil {
			row = &ContentTypeRow{Type: f.ContentType}
			agg[f.ContentType] = row
		}
		row.Bytes += f.ContentLength
		row.Count++
		if f.ContentLength > row.Max {
			row.Max = f.ContentLength
		}
	}
	out := make([]ContentTypeRow, 0, len(agg))
	for _, row := range agg {
		row.Mean = float64(row.Bytes) / float64(row.Count)
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bytes > out[j].Bytes })
	return out
}

// FlowStats returns per-domain flow counts and individual flow sizes
// for one (cloud, kind) pair — the inputs to Figure 3's CDFs.
func (a *Analysis) FlowStats(cloud ipranges.Provider, kind Kind) (flowsPerDomain []float64, flowSizes []float64) {
	perDomain := map[string]int{}
	for _, f := range a.Flows {
		if f.Cloud != cloud || f.Kind != kind {
			continue
		}
		if d := f.Domain(); d != "" {
			perDomain[d]++
		}
		flowSizes = append(flowSizes, float64(f.Bytes()))
	}
	for _, n := range perDomain {
		flowsPerDomain = append(flowsPerDomain, float64(n))
	}
	return flowsPerDomain, flowSizes
}
