package capture

import (
	"bytes"
	"testing"

	"cloudscope/internal/pcapio"
)

func BenchmarkAnalyze(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Flows = 2000
	var buf bytes.Buffer
	g := NewGenerator(cfg, capWorld)
	if _, err := g.Generate(pcapio.NewWriter(&buf, cfg.Snaplen)); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(bytes.NewReader(raw), capWorld.Ranges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Flows = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		var buf bytes.Buffer
		g := NewGenerator(cfg, capWorld)
		if _, err := g.Generate(pcapio.NewWriter(&buf, cfg.Snaplen)); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}
