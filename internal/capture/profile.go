package capture

import (
	"cloudscope/internal/ipranges"
)

// Protocol flow mixes per cloud, from Table 2's flow columns
// (normalized). EC2 traffic is HTTP-flow-heavy; Azure has a visible
// Other-UDP component.
var flowKindWeights = map[ipranges.Provider][]float64{
	// Order follows Kinds: ICMP, HTTP, HTTPS, DNS, OtherTCP, OtherUDP.
	ipranges.EC2:   {0.0003, 0.7045, 0.0652, 0.1033, 0.0040, 0.0019},
	ipranges.Azure: {0.0018, 0.6541, 0.0692, 0.1159, 0.0110, 0.1477},
}

// cloudFlowSplit is Table 1's flow split: EC2 80.7%, Azure 19.3%.
var cloudFlowSplit = map[ipranges.Provider]float64{
	ipranges.EC2:   0.807,
	ipranges.Azure: 0.193,
}

// trafficAnchor pins a domain's share of the capture's total HTTP(S)
// byte volume (Table 5), its protocol bias, and whether it is in the
// Alexa population or capture-only.
type trafficAnchor struct {
	domain string
	cloud  ipranges.Provider
	// share of total HTTP(S) volume across both clouds.
	share float64
	// httpsBias is the probability a flow for this domain is HTTPS.
	httpsBias float64
	// hosts are subdomain labels used in Host/SNI/CN values.
	hosts []string
	// meanObject is the mean per-flow transfer in bytes (heavy-tailed
	// around it).
	meanObject float64
}

// trafficAnchors reproduces Table 5's rows. dropbox.com dominates with
// ~68% of HTTP(S) volume, carried over HTTPS — which is what makes
// HTTPS 73% of capture bytes while being only 6.6% of flows.
var trafficAnchors = []trafficAnchor{
	{"dropbox.com", ipranges.EC2, 0.6821, 0.97, []string{"dl", "dl-web", "client", "www", "notify"}, 600 << 10},
	{"netflix.com", ipranges.EC2, 0.0170, 0.55, []string{"api", "www", "m"}, 90 << 10},
	{"truste.com", ipranges.EC2, 0.0106, 0.30, []string{"consent", "choices"}, 18 << 10},
	{"channel3000.com", ipranges.EC2, 0.0074, 0.05, []string{"www", "media"}, 60 << 10},
	{"pinterest.com", ipranges.EC2, 0.0059, 0.35, []string{"www", "api", "m"}, 25 << 10},
	{"adsafeprotected.com", ipranges.EC2, 0.0053, 0.20, []string{"pixel", "static"}, 6 << 10},
	{"zynga.com", ipranges.EC2, 0.0044, 0.25, []string{"api", "assets"}, 30 << 10},
	{"sharefile.com", ipranges.EC2, 0.0042, 0.90, []string{"www", "storage"}, 300 << 10},
	{"zoolz.com", ipranges.EC2, 0.0036, 0.95, []string{"backup", "api"}, 700 << 10},
	{"echoenabled.com", ipranges.EC2, 0.0031, 0.15, []string{"api", "cdn"}, 8 << 10},
	{"vimeo.com", ipranges.EC2, 0.0026, 0.20, []string{"player", "api"}, 120 << 10},
	{"foursquare.com", ipranges.EC2, 0.0025, 0.60, []string{"api", "www"}, 12 << 10},
	{"sourcefire.com", ipranges.EC2, 0.0022, 0.70, []string{"updates", "www"}, 200 << 10},
	{"instagram.com", ipranges.EC2, 0.0017, 0.50, []string{"api", "www"}, 20 << 10},
	{"copperegg.com", ipranges.EC2, 0.0017, 0.80, []string{"api", "app"}, 15 << 10},

	{"atdmt.com", ipranges.Azure, 0.0310, 0.10, []string{"view", "ad"}, 9 << 10},
	{"msn.com", ipranges.Azure, 0.0239, 0.15, []string{"www", "portal1", "ent1"}, 22 << 10},
	{"microsoft.com", ipranges.Azure, 0.0226, 0.35, []string{"download", "svc1", "update"}, 80 << 10},
	{"msecnd.net", ipranges.Azure, 0.0155, 0.05, []string{"az12345.vo", "ajax"}, 35 << 10},
	{"s-msn.com", ipranges.Azure, 0.0143, 0.05, []string{"static", "img"}, 28 << 10},
	{"live.com", ipranges.Azure, 0.0135, 0.70, []string{"login1", "mail1", "skydrive"}, 40 << 10},
	{"virtualearth.net", ipranges.Azure, 0.0106, 0.20, []string{"tiles", "dev"}, 50 << 10},
	{"dreamspark.com", ipranges.Azure, 0.0081, 0.60, []string{"www", "downloads"}, 150 << 10},
	{"hotmail.com", ipranges.Azure, 0.0072, 0.85, []string{"mail", "attach"}, 30 << 10},
	{"mesh.com", ipranges.Azure, 0.0052, 0.90, []string{"sync", "api"}, 120 << 10},
	{"wonderwall.com", ipranges.Azure, 0.0036, 0.10, []string{"www", "img"}, 25 << 10},
	{"msads.net", ipranges.Azure, 0.0029, 0.10, []string{"serve", "pixel"}, 7 << 10},
	{"aspnetcdn.com", ipranges.Azure, 0.0026, 0.05, []string{"ajax", "cdn"}, 15 << 10},
	{"windowsphone.com", ipranges.Azure, 0.0023, 0.40, []string{"www", "store"}, 45 << 10},
	{"windowsphone-int.com", ipranges.Azure, 0.0023, 0.40, []string{"int", "dev"}, 45 << 10},
}

// contentType describes one HTTP content-type row of Table 6.
type contentType struct {
	name string
	// byteShare is the fraction of HTTP body bytes (Table 6).
	byteShare float64
	// meanBytes and maxBytes bound the object-size distribution.
	meanBytes float64
	maxBytes  int64
}

var contentTypes = []contentType{
	{"text/html", 0.2410, 16 << 10, 3_700_000},
	{"text/plain", 0.2337, 5 << 10, 24_400_000},
	{"image/jpeg", 0.1064, 20 << 10, 18_700_000},
	{"application/x-shockwave-flash", 0.0866, 36 << 10, 22_900_000},
	{"application/octet-stream", 0.0785, 29 << 10, 2_000_000_000},
	{"application/pdf", 0.0315, 656 << 10, 25_700_000},
	{"text/xml", 0.0310, 5 << 10, 4_900_000},
	{"image/png", 0.0294, 6 << 10, 24_900_000},
	{"application/zip", 0.0281, 1664 << 10, 1_900_000_000},
	{"video/mp4", 0.0221, 6578 << 10, 143_000_000},
}

// contentCountWeights converts byte shares to per-flow draw weights
// (share divided by mean size → relative object counts).
func contentCountWeights() []float64 {
	out := make([]float64, len(contentTypes))
	for i, ct := range contentTypes {
		out[i] = ct.byteShare / ct.meanBytes
	}
	return out
}
