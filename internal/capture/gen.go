package capture

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"cloudscope/internal/chaos"
	"cloudscope/internal/deploy"
	"cloudscope/internal/dnswire"
	"cloudscope/internal/httpwire"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/packet"
	"cloudscope/internal/parallel"
	"cloudscope/internal/pcapio"
	"cloudscope/internal/tlswire"
	"cloudscope/internal/xrand"
)

// host is one server endpoint flows can target.
type host struct {
	name   string
	domain string
	cloud  ipranges.Provider
	ip     netaddr.IP
}

// Generator synthesizes a border capture for a world.
type Generator struct {
	cfg    Config
	world  *deploy.World
	rng    *xrand.Rand
	ranges *ipranges.List

	anchorHosts map[string][]host // anchor domain → hosts
	background  map[ipranges.Provider][]host
	bgZipf      map[ipranges.Provider]*xrand.Zipf
	ctPick      *xrand.Weighted // shared content-type CDF (NextR draws)
	diurnal     *xrand.Weighted // shared hour-of-day CDF (NextR draws)

	// synthetic server-IP allocation cursors per cloud
	ipCursor map[ipranges.Provider]uint64

	truth Truth
}

// NewGenerator builds a generator over world. The world supplies real
// front-end IPs for Alexa domains; capture-only domains (the half of
// captured domains outside the top list) get synthetic cloud addresses.
func NewGenerator(cfg Config, world *deploy.World) *Generator {
	g := &Generator{
		cfg:         cfg,
		world:       world,
		rng:         xrand.SplitSeeded(cfg.Seed, "capture"),
		ranges:      world.Ranges,
		anchorHosts: map[string][]host{},
		background:  map[ipranges.Provider][]host{},
		bgZipf:      map[ipranges.Provider]*xrand.Zipf{},
		ipCursor:    map[ipranges.Provider]uint64{ipranges.EC2: 977, ipranges.Azure: 1409},
	}
	g.truth = *newTruth()
	g.buildCatalog()
	g.ctPick = xrand.NewWeighted(g.rng, contentCountWeights())
	// Campus traffic peaks mid-afternoon.
	hours := make([]float64, 24)
	for h := 0; h < 24; h++ {
		hours[h] = 1 + 0.8*math.Sin(float64(h-8)/24*2*math.Pi)
	}
	g.diurnal = xrand.NewWeighted(g.rng, hours)
	return g
}

// flowgen is one shard's flow factory: a reusable random stream that is
// reseeded per flow, a private Truth, and a pooled packet block the
// shard's frames are serialized into in place. Every draw a flow makes
// comes from a stream derived from (capture seed, flow index) alone —
// never from the shard that runs it or the worker that schedules it —
// so the capture is a pure function of seed + world, bit-identical at
// every worker count AND every shard layout. The same holds with a
// chaos engine attached: every capture-fault verdict is a pure hash of
// (flow index, packet sequence), so a faulted pcap is just as layout-
// invariant as a clean one.
type flowgen struct {
	g      *Generator
	rng    *xrand.Rand
	truth  *Truth
	blk    *pcapio.Block
	events []event

	flowIdx int
	pktSeq  uint16

	// Capture-fault state for the flow in progress: its per-flow
	// verdict, where its events start (so truncation and reordering can
	// edit just this flow's tail), and frame corruptions deferred until
	// the frames are actually serialized.
	verdict  chaos.CaptureFlowVerdict
	evStart  int
	corrupts []pendingCorrupt
}

// pendingCorrupt is one frame-damage verdict waiting for finishFlow —
// put reserves the record before the caller serializes the frame into
// it, so the damage must land after the flow finishes writing.
type pendingCorrupt struct {
	rec  int32
	draw float64
}

// newFlowgen builds one shard's flow factory. The stream is a NewFast
// source: it is reseeded once per flow, and math/rand's default source
// would rebuild its 607-word state table on every flow boundary.
func (g *Generator) newFlowgen() *flowgen {
	return &flowgen{g: g, rng: xrand.NewFast(0), truth: newTruth(), blk: pcapio.GetBlock()}
}

// beginFlow rewinds the stream onto flow idx's private sub-stream,
// settling the previous flow's capture faults first.
func (fg *flowgen) beginFlow(idx int) {
	fg.finishFlow()
	fg.rng.Reseed(xrand.SubSeed(fg.g.cfg.Seed, "capture/flow", idx))
	fg.flowIdx = idx
	fg.pktSeq = 0
	fg.verdict = fg.g.cfg.Chaos.CaptureFlow(idx)
}

// finishFlow applies the in-progress flow's capture faults: deferred
// frame corruption, flow truncation, and segment reordering. beginFlow
// calls it between flows and the shard loop once more at its end.
func (fg *flowgen) finishFlow() {
	for _, c := range fg.corrupts {
		fg.corruptRecord(c.rec, c.draw)
	}
	fg.corrupts = fg.corrupts[:0]
	n := len(fg.events) - fg.evStart
	// Truncation: the capture lost the flow's tail. A reset flow is
	// already cut at the RST, so the reset supersedes.
	if v := fg.verdict; v.KeepFrac > 0 && v.RSTFrac == 0 && n > 1 {
		keep := int(float64(n)*v.KeepFrac + 0.5)
		if keep < 1 {
			keep = 1
		}
		if keep < n {
			fg.events = fg.events[:fg.evStart+keep]
			fg.truth.Faults[string(chaos.CapTruncate)]++
			n = keep
		}
	}
	// Reordering: swap the capture timestamps of one adjacent packet
	// pair, so the two records genuinely trade places in the pcap's
	// global time order.
	if v := fg.verdict; v.Reorder > 0 && n >= 2 {
		i := fg.evStart + int(v.Reorder*float64(n-1))
		if i > fg.evStart+n-2 {
			i = fg.evStart + n - 2
		}
		a, b := &fg.events[i], &fg.events[i+1]
		if a.nano != b.nano {
			a.nano, b.nano = b.nano, a.nano
			fg.truth.Faults[string(chaos.CapReorder)]++
		}
	}
	fg.verdict = chaos.CaptureFlowVerdict{}
	fg.evStart = len(fg.events)
}

// corruptRecord damages one reserved frame the way real taps do: half
// the draws shorten the captured length (a cut-off frame with its wire
// length intact), the rest flip one byte in place.
func (fg *flowgen) corruptRecord(rec int32, draw float64) {
	data := fg.blk.Data(int(rec))
	if len(data) == 0 {
		return
	}
	if draw < 0.5 {
		keep := 1 + int(draw*2*float64(len(data)-1))
		if keep >= len(data) {
			keep = len(data) - 1
		}
		if keep < 1 {
			return
		}
		fg.blk.TruncateRecord(int(rec), keep)
	} else {
		off := int((draw - 0.5) * 2 * float64(len(data)))
		if off >= len(data) {
			off = len(data) - 1
		}
		data[off] ^= 0xff
	}
	fg.truth.Faults[string(chaos.CapCorrupt)]++
}

// put reserves one packet record in the shard's block and logs the
// event with its total-order key. The returned slice is the zeroed
// frame buffer to serialize into. A cap-drop verdict reserves the
// record but never schedules it — the pcap simply lacks the packet —
// and a cap-corrupt verdict is deferred until the flow finishes
// serializing.
func (fg *flowgen) put(t time.Time, orig, n int) []byte {
	data := fg.blk.AppendRecord(t, orig, n)
	rec := int32(fg.blk.Len() - 1)
	seq := fg.pktSeq
	fg.pktSeq++
	if pv := fg.g.cfg.Chaos.CapturePacket(fg.flowIdx, int(seq)); pv.Drop || pv.Corrupt > 0 {
		if pv.Drop {
			fg.truth.Faults[string(chaos.CapDrop)]++
			return data
		}
		fg.corrupts = append(fg.corrupts, pendingCorrupt{rec: rec, draw: pv.Corrupt})
	}
	fg.events = append(fg.events, event{
		nano: t.UnixNano(),
		ord:  uint64(fg.flowIdx)<<16 | uint64(seq),
		blk:  fg.blk,
		rec:  rec,
	})
	return data
}

// syntheticIP draws a stable address inside a provider's published
// ranges from the flow's stream. (The catalog builder keeps the
// sequential cursor allocator; flows cannot share a cursor without
// contending across shards.)
func (fg *flowgen) syntheticIP(p ipranges.Provider) netaddr.IP {
	var cidrs []netaddr.CIDR
	for _, region := range fg.g.ranges.Regions(p) {
		cidrs = append(cidrs, fg.g.ranges.RegionCIDRs(region)...)
	}
	total := uint64(0)
	for _, c := range cidrs {
		total += c.Size()
	}
	off := uint64(fg.rng.Int63()) % total
	for _, c := range cidrs {
		if off < c.Size() {
			return c.Nth(off)
		}
		off -= c.Size()
	}
	panic("unreachable")
}

// syntheticIP allocates a stable address inside a provider's ranges.
func (g *Generator) syntheticIP(p ipranges.Provider) netaddr.IP {
	var cidrs []netaddr.CIDR
	for _, region := range g.ranges.Regions(p) {
		cidrs = append(cidrs, g.ranges.RegionCIDRs(region)...)
	}
	g.ipCursor[p] += 2654435761 % 10007
	total := uint64(0)
	for _, c := range cidrs {
		total += c.Size()
	}
	off := g.ipCursor[p] % total
	for _, c := range cidrs {
		if off < c.Size() {
			return c.Nth(off)
		}
		off -= c.Size()
	}
	panic("unreachable")
}

// buildCatalog assembles anchor and background host lists.
func (g *Generator) buildCatalog() {
	for _, a := range trafficAnchors {
		for _, label := range a.hosts {
			fqdn := label + "." + a.domain
			h := host{name: fqdn, domain: a.domain, cloud: a.cloud}
			if sub, ok := g.world.Subdomain(fqdn); ok && len(sub.VMs) > 0 {
				h.ip = sub.VMs[0].PublicIP
			} else {
				h.ip = g.syntheticIP(a.cloud)
			}
			g.anchorHosts[a.domain] = append(g.anchorHosts[a.domain], h)
		}
	}
	// Background: every cloud-using subdomain in the world with a
	// resolvable front end, plus capture-only synthetic domains (the
	// paper found ~half the captured domains outside the Alexa list).
	anchorDomains := map[string]bool{}
	for _, a := range trafficAnchors {
		anchorDomains[a.domain] = true
	}
	for _, d := range g.world.CloudDomains {
		if anchorDomains[d.Name] {
			continue
		}
		for _, s := range d.CloudSubdomains() {
			h := host{name: s.FQDN, domain: d.Name, cloud: s.Provider}
			switch {
			case len(s.VMs) > 0:
				h.ip = s.VMs[0].PublicIP
			case s.ELB != nil && len(s.ELB.Proxies) > 0:
				h.ip = s.ELB.Proxies[0].PublicIP
			case s.CS != nil:
				h.ip = s.CS.Node.PublicIP
			default:
				continue
			}
			g.background[s.Provider] = append(g.background[s.Provider], h)
		}
	}
	// Capture-only domains.
	nExtra := len(g.background[ipranges.EC2]) / 2
	if nExtra < 20 {
		nExtra = 20
	}
	for i := 0; i < nExtra; i++ {
		p := ipranges.EC2
		if g.rng.Bool(0.065) {
			p = ipranges.Azure
		}
		domain := fmt.Sprintf("captureonly%04d.com", i)
		h := host{name: "api." + domain, domain: domain, cloud: p, ip: g.syntheticIP(p)}
		g.background[p] = append(g.background[p], h)
	}
	for _, p := range []ipranges.Provider{ipranges.EC2, ipranges.Azure} {
		if len(g.background[p]) == 0 {
			// Degenerate tiny worlds: invent one host.
			g.background[p] = []host{{name: "api.filler.com", domain: "filler.com", cloud: p, ip: g.syntheticIP(p)}}
		}
		// Zipf with s≈1.3 concentrates ~80% of flows in the top 100
		// domains, as §3.3 observed.
		g.bgZipf[p] = xrand.NewZipf(g.rng.Split("zipf/"+string(p)), len(g.background[p]), 1.3)
	}
}

// event is one packet scheduled for the pcap: its timestamp, a total-
// order tie-break (flow index and packet sequence — unique per packet,
// so the emission order is a pure function of the flow population, not
// of how shards happened to arrange the events before the sort), and
// the block record holding the frame bytes.
type event struct {
	nano int64
	ord  uint64
	blk  *pcapio.Block
	rec  int32
}

// anchorShareTotal is the fraction of HTTP(S) bytes Table 5's anchor
// domains carry.
func anchorShareTotal() float64 {
	s := 0.0
	for _, a := range trafficAnchors {
		s += a.share
	}
	return s
}

// Generate writes the capture to w and returns the ground truth.
//
// Calibration works in two passes. Background flows are generated first
// to fill the per-cloud protocol mix; their actual HTTP(S) byte mass is
// tallied. Anchor flows are then sized so each anchor domain's share of
// the resulting total matches Table 5 exactly in expectation: with the
// anchors jointly holding fraction S of all HTTP(S) bytes, the anchor
// byte pool is B_bg * S / (1 - S).
//
// Both passes shard their flow ranges over cfg.Par, but every flow
// draws from its own sub-stream keyed by (seed, flow index) and frames
// are serialized into per-shard pooled blocks, so the pcap bytes are a
// pure function of seed + world: identical at every worker count and
// every shard layout. The final emission order is (timestamp, flow,
// packet) — a strict total order, so the sort result cannot depend on
// how the shards arranged events. The pass-B barrier (anchor sizing
// needs the full background HTTP mass) is inherent to the calibration,
// not an artifact of the fan-out.
func (g *Generator) Generate(w *pcapio.Writer) (*Truth, error) {
	var events []event
	var blocks []*pcapio.Block
	shareS := anchorShareTotal()

	// Anchors get a fixed ~6% of the flow budget, split ∝ √share so
	// heavy domains get more flows without dominating counts; their
	// per-flow sizes (set in pass B) carry the byte shares. meanObject
	// acts only as a shape hint for the √share split.
	sqrtSum := 0.0
	for _, a := range trafficAnchors {
		sqrtSum += math.Sqrt(a.share)
	}
	anchorBudget := float64(g.cfg.Flows) * 0.06
	anchorN := make([]int, len(trafficAnchors))
	estAnchorFlows := map[ipranges.Provider]int{}
	for i, a := range trafficAnchors {
		n := int(math.Round(anchorBudget * math.Sqrt(a.share) / sqrtSum))
		if n < 1 {
			n = 1
		}
		anchorN[i] = n
		estAnchorFlows[a.cloud] += n
	}
	clouds := []ipranges.Provider{ipranges.EC2, ipranges.Azure}
	bgBudget := map[ipranges.Provider]int{}
	for _, c := range clouds {
		bgBudget[c] = int(float64(g.cfg.Flows)*cloudFlowSplit[c]) - estAnchorFlows[c]
		if bgBudget[c] < 0 {
			bgBudget[c] = 0
		}
	}

	// collect folds one pass's shard results in shard order. (Truth
	// merge is a sum and events get a total-order sort, so the fold
	// order is cosmetic; the blocks just need to live until written.)
	collect := func(fgs []*flowgen) {
		for _, fg := range fgs {
			if fg == nil {
				continue
			}
			events = append(events, fg.events...)
			g.truth.merge(fg.truth)
			blocks = append(blocks, fg.blk)
		}
	}

	// Pass A: background flows fill the protocol mix. The per-cloud
	// kind CDF is precomputed once and shared read-only across shards
	// (NextR draws from the flow's stream, like the Zipf samplers).
	base := 0
	for _, cloud := range clouds {
		cloud := cloud
		kindPick := xrand.NewWeighted(g.rng, flowKindWeights[cloud])
		shards := parallel.Shards(bgBudget[cloud], g.cfg.Par.ShardSize)
		fgs := make([]*flowgen, len(shards))
		cloudBase := base
		if err := parallel.Run(g.cfg.Par, bgBudget[cloud], func(sh parallel.Shard) error {
			fg := g.newFlowgen()
			for i := sh.Lo; i < sh.Hi; i++ {
				idx := cloudBase + i + 1
				fg.beginFlow(idx)
				kind := Kinds[kindPick.NextR(fg.rng)]
				switch kind {
				case KindHTTP, KindHTTPS:
					h := g.background[cloud][g.bgZipf[cloud].NextR(fg.rng)]
					var size int64
					var ctype string
					if kind == KindHTTP {
						ct := contentTypes[g.ctPick.NextR(fg.rng)]
						size = fg.lognormalMean(ct.meanBytes, 1.2, ct.maxBytes)
						ctype = ct.name
					} else {
						median := 10 << 10
						if cloud == ipranges.Azure {
							median = 8 << 10
						}
						size = fg.lognormalMedian(float64(median), 1.4, 500_000_000)
					}
					fg.tcpFlowTyped(idx, kind, h, size, ctype)
				case KindDNS:
					h := g.background[cloud][g.bgZipf[cloud].NextR(fg.rng)]
					fg.dnsFlow(idx, cloud, h)
				case KindICMP:
					fg.icmpFlow(idx, cloud)
				case KindOtherTCP:
					h := g.background[cloud][g.bgZipf[cloud].NextR(fg.rng)]
					size := fg.lognormalMedian(30_000, 1.5, 100_000_000)
					fg.otherTCPFlow(idx, cloud, h, size)
				case KindOtherUDP:
					fg.otherUDPFlow(idx, cloud)
				}
			}
			fg.finishFlow()
			fgs[sh.Index] = fg
			return nil
		}); err != nil {
			return nil, err
		}
		collect(fgs)
		base += bgBudget[cloud]
	}

	// Pass B: anchors sized from the actual background HTTP(S) mass.
	var bgHTTPBytes float64
	for _, c := range clouds {
		bgHTTPBytes += float64(g.truth.BytesByKind[c][KindHTTP] + g.truth.BytesByKind[c][KindHTTPS])
	}
	anchorPool := bgHTTPBytes * shareS / (1 - shareS)
	// Flatten the anchors into one flow list so flow indexes are a pure
	// function of the total anchor flow count.
	var anchorOf []int
	per := make([]float64, len(trafficAnchors))
	for ai, a := range trafficAnchors {
		per[ai] = a.share / shareS * anchorPool / float64(anchorN[ai])
		for i := 0; i < anchorN[ai]; i++ {
			anchorOf = append(anchorOf, ai)
		}
	}
	shards := parallel.Shards(len(anchorOf), g.cfg.Par.ShardSize)
	fgs := make([]*flowgen, len(shards))
	if err := parallel.Run(g.cfg.Par, len(anchorOf), func(sh parallel.Shard) error {
		fg := g.newFlowgen()
		for j := sh.Lo; j < sh.Hi; j++ {
			idx := base + j + 1
			fg.beginFlow(idx)
			a := trafficAnchors[anchorOf[j]]
			kind := KindHTTP
			if fg.rng.Bool(a.httpsBias) {
				kind = KindHTTPS
			}
			h := xrand.PickUniform(fg.rng, g.anchorHosts[a.domain])
			size := fg.lognormalMean(per[anchorOf[j]], 1.1, 2_000_000_000)
			fg.tcpFlow(idx, kind, h, size)
		}
		fg.finishFlow()
		fgs[sh.Index] = fg
		return nil
	}); err != nil {
		return nil, err
	}
	collect(fgs)

	sort.Slice(events, func(i, j int) bool {
		if events[i].nano != events[j].nano {
			return events[i].nano < events[j].nano
		}
		return events[i].ord < events[j].ord
	})
	for _, ev := range events {
		if err := w.WriteRecord(ev.blk.Record(int(ev.rec))); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	for _, b := range blocks {
		b.Release()
	}
	t := g.truth
	return &t, nil
}

// lognormalMean draws a heavy-tailed size with the given mean.
func (fg *flowgen) lognormalMean(mean, sigma float64, max int64) int64 {
	mu := math.Log(mean) - sigma*sigma/2
	v := int64(fg.rng.LogNormal(mu, sigma))
	if v < 64 {
		v = 64
	}
	if v > max {
		v = max
	}
	return v
}

// lognormalMedian draws a heavy-tailed size with the given median.
func (fg *flowgen) lognormalMedian(median, sigma float64, max int64) int64 {
	v := int64(fg.rng.LogNormal(math.Log(median), sigma))
	if v < 64 {
		v = 64
	}
	if v > max {
		v = max
	}
	return v
}

// flowTiming picks a diurnal start time and a transfer duration.
func (fg *flowgen) flowTiming(bytes int64) (start time.Time, dur time.Duration) {
	day := fg.rng.Intn(fg.g.cfg.Days)
	hour := fg.g.diurnal.NextR(fg.rng)
	offset := time.Duration(day)*24*time.Hour +
		time.Duration(hour)*time.Hour +
		time.Duration(fg.rng.Intn(3600*1000))*time.Millisecond
	start = fg.g.cfg.Start.Add(offset)
	rate := fg.rng.LogNormal(math.Log(400_000), 1.0) // bytes/sec
	dur = time.Duration(float64(bytes) / rate * float64(time.Second))
	if dur < 10*time.Millisecond {
		dur = 10 * time.Millisecond
	}
	// A thin tail of long-lived sessions (notification long-polls, sync
	// channels) keeps connections open for hours — the paper observed
	// flows "that last for a few hours".
	if fg.rng.Bool(0.004) {
		dur = 30*time.Minute + time.Duration(fg.rng.Float64()*float64(3*time.Hour))
	}
	if dur > 4*time.Hour {
		dur = 4 * time.Hour
	}
	return start, dur
}

// clientEndpoint derives a unique campus client address/port per flow.
func clientEndpoint(idx int) (netaddr.IP, uint16) {
	ip := campusNet.Nth(uint64(1 + idx%65000))
	port := uint16(1024 + (idx/65000*7919+idx)%60000)
	return ip, port
}

func (fg *flowgen) account(cloud ipranges.Provider, kind Kind, domain string, bytes int64) {
	fg.truth.TotalFlows++
	fg.truth.TotalBytes += bytes
	fg.truth.FlowsByCloud[cloud]++
	fg.truth.BytesByCloud[cloud] += bytes
	fg.truth.FlowsByKind[cloud][kind]++
	fg.truth.BytesByKind[cloud][kind] += bytes
	if domain != "" && (kind == KindHTTP || kind == KindHTTPS) {
		fg.truth.HTTPVolumeByDomain[domain] += bytes
	}
}

// tcpFlow emits an HTTP or HTTPS flow, drawing a size-appropriate
// content type (anchor flows carry calibrated sizes, so their type must
// follow the size or Table 6's type/size correlations break).
func (fg *flowgen) tcpFlow(idx int, kind Kind, h host, size int64) {
	fg.tcpFlowTyped(idx, kind, h, size, fg.contentTypeForSize(size))
}

// contentTypeForSize picks a Content-Type for a transfer of the given
// size by Table 6's byte shares, restricted to types whose observed
// maximum accommodates the size (a 20 MB object can be text/plain — the
// paper saw 24 MB ones — but not text/xml).
func (fg *flowgen) contentTypeForSize(size int64) string {
	names := make([]string, 0, len(contentTypes))
	weights := make([]float64, 0, len(contentTypes))
	for _, ct := range contentTypes {
		if ct.maxBytes >= size {
			names = append(names, ct.name)
			weights = append(weights, ct.byteShare)
		}
	}
	if len(names) == 0 {
		return "application/octet-stream"
	}
	return xrand.Pick(fg.rng, names, weights)
}

// tcpFlowTyped emits a full TCP exchange: handshake, application heads,
// representative data packets, and FINs whose sequence numbers encode
// the transferred volume.
func (fg *flowgen) tcpFlowTyped(idx int, kind Kind, h host, size int64, ctype string) {
	clientIP, clientPort := clientEndpoint(idx)
	serverPort := uint16(80)
	if kind == KindHTTPS {
		serverPort = 443
	}
	var reqPayload, respPayload []byte
	if kind == KindHTTP {
		req := httpwire.Request{Host: h.name, Path: "/" + ctype[strings.IndexByte(ctype, '/')+1:], Headers: map[string]string{"User-Agent": "Mozilla/5.0 (cloudscope)"}}
		reqPayload = req.SerializeRequest()
		resp := httpwire.Response{StatusCode: 200, ContentType: ctype, ContentLength: size}
		respPayload = resp.SerializeResponse()
		if kind == KindHTTP && ctype != "" {
			fg.truth.ContentTypeBytes[ctype] += size
		}
	} else {
		reqPayload = tlswire.ClientHello(h.name)
		respPayload = append(tlswire.ServerHello(), tlswire.Certificate("*."+h.domain)...)
	}
	reqBytes := int64(len(reqPayload)) + 300 // request head + client app data
	respBytes := int64(len(respPayload)) + size
	fg.account(h.cloud, kind, h.domain, reqBytes+respBytes)
	fg.emitTCP(idx, clientIP, clientPort, h.ip, serverPort, reqPayload, respPayload, reqBytes, respBytes)
}

// otherTCPFlow emits a non-HTTP TCP exchange (SMTP/SSH/FTP-ish).
func (fg *flowgen) otherTCPFlow(idx int, cloud ipranges.Provider, h host, size int64) {
	clientIP, clientPort := clientEndpoint(idx)
	ports := []uint16{25, 22, 21, 6667, 8080}
	serverPort := ports[fg.rng.Intn(len(ports))]
	banner := []byte("220 service ready\r\n")
	fg.account(cloud, KindOtherTCP, "", size)
	fg.emitTCP(idx, clientIP, clientPort, h.ip, serverPort, []byte("EHLO campus\r\n"), banner, 200, size)
}

// emitTCP serializes the packet series for one connection straight into
// the shard's block: each frame is built in place in the reserved
// record slice, so a connection costs zero per-packet allocations.
//
// A cap-rst verdict plans the same packet series, then stops capturing
// at a deterministic cut and appends a forged server-side RST: the
// analyzer sees a half-closed flow ending in a reset, exactly what a
// border tap records when a middlebox kills a connection.
func (fg *flowgen) emitTCP(idx int, cIP netaddr.IP, cPort uint16, sIP netaddr.IP, sPort uint16, reqPayload, respPayload []byte, reqBytes, respBytes int64) {
	start, dur := fg.flowTiming(respBytes)
	isnC := uint32(fg.rng.Intn(1 << 30))
	isnS := uint32(fg.rng.Intn(1 << 30))
	rtt := time.Duration(20+fg.rng.Intn(60)) * time.Millisecond

	planned := 8 // handshake + app heads + teardown
	for rem, i := respBytes-int64(len(respPayload)), 0; i < 2 && rem > 1460; i++ {
		planned++
		rem -= 1460
	}
	cut := planned
	if fg.verdict.RSTFrac > 0 {
		cut = int(float64(planned)*fg.verdict.RSTFrac + 0.5)
		if cut < 3 {
			cut = 3 // the handshake was on the wire before the reset
		}
		if cut >= planned {
			cut = planned - 1
		}
	}
	emitted := 0
	var lastD time.Duration
	rstSeq, rstAck := isnS+1, isnC+1

	mac := packet.MAC{0x00, 0x16, 0x3e, byte(idx >> 16), byte(idx >> 8), byte(idx)}
	rmac := packet.MAC{0x00, 0x0c, 0x29, 1, 2, 3}
	emit := func(d time.Duration, src, dst netaddr.IP, tcp *packet.TCP, payload []byte, origTotal int) {
		n := packet.TCPFrameLen(len(payload))
		orig := n
		if origTotal > 0 && origTotal+14 > n {
			orig = origTotal + 14
		}
		buf := fg.put(start.Add(d), orig, n)
		ip := packet.IPv4{Src: src, Dst: dst, ID: uint16(idx)}
		if origTotal > 0 {
			ip.TotalLength = uint16(min64(int64(origTotal), 65535))
		}
		eth := packet.Ethernet{Src: mac, Dst: rmac, EtherType: packet.EtherTypeIPv4}
		packet.PutTCPFrame(buf, &eth, &ip, tcp, payload)
	}
	frame := func(d time.Duration, src, dst netaddr.IP, tcp *packet.TCP, payload []byte, origTotal int) {
		if emitted >= cut {
			emitted++
			return
		}
		emitted++
		lastD = d
		if src == sIP {
			rstSeq, rstAck = tcp.Seq+uint32(len(payload)), tcp.Ack
		}
		emit(d, src, dst, tcp, payload, origTotal)
	}

	// Handshake.
	frame(0, cIP, sIP, &packet.TCP{SrcPort: cPort, DstPort: sPort, Seq: isnC, Flags: packet.FlagSYN}, nil, 0)
	frame(rtt/2, sIP, cIP, &packet.TCP{SrcPort: sPort, DstPort: cPort, Seq: isnS, Ack: isnC + 1, Flags: packet.FlagSYN | packet.FlagACK}, nil, 0)
	frame(rtt, cIP, sIP, &packet.TCP{SrcPort: cPort, DstPort: sPort, Seq: isnC + 1, Ack: isnS + 1, Flags: packet.FlagACK}, nil, 0)
	// Application heads.
	frame(rtt+time.Millisecond, cIP, sIP, &packet.TCP{SrcPort: cPort, DstPort: sPort, Seq: isnC + 1, Ack: isnS + 1, Flags: packet.FlagACK | packet.FlagPSH}, reqPayload, 0)
	frame(rtt*3/2+time.Millisecond, sIP, cIP, &packet.TCP{SrcPort: sPort, DstPort: cPort, Seq: isnS + 1, Ack: isnC + 1 + uint32(len(reqPayload)), Flags: packet.FlagACK | packet.FlagPSH}, respPayload, 0)
	// Representative data packets (full-size on the wire; snap applies).
	remaining := respBytes - int64(len(respPayload))
	dataSeq := isnS + 1 + uint32(len(respPayload))
	for i := 0; i < 2 && remaining > 1460; i++ {
		frame(rtt*2+dur*time.Duration(i+1)/4,
			sIP, cIP, &packet.TCP{SrcPort: sPort, DstPort: cPort, Seq: dataSeq, Ack: isnC + 1 + uint32(reqBytes), Flags: packet.FlagACK}, nil, 1500)
		dataSeq += 1460
		remaining -= 1460
	}
	// Teardown carrying final sequence numbers. The schedule is causal:
	// the close follows every frame already on the wire even when the
	// transfer duration is shorter than the handshake RTT, so a clean
	// capture never time-sorts a FIN ahead of the data it acknowledges
	// (the analyzer would read that as a re-ordered segment).
	finS := isnS + 1 + uint32(respBytes)
	finC := isnC + 1 + uint32(reqBytes)
	tear := rtt + dur
	if tear <= lastD {
		tear = lastD + time.Millisecond
	}
	frame(tear, sIP, cIP, &packet.TCP{SrcPort: sPort, DstPort: cPort, Seq: finS, Ack: finC, Flags: packet.FlagFIN | packet.FlagACK}, nil, 0)
	frame(tear+time.Millisecond, cIP, sIP, &packet.TCP{SrcPort: cPort, DstPort: sPort, Seq: finC, Ack: finS + 1, Flags: packet.FlagFIN | packet.FlagACK}, nil, 0)
	frame(tear+2*time.Millisecond, sIP, cIP, &packet.TCP{SrcPort: sPort, DstPort: cPort, Seq: finS + 1, Ack: finC + 1, Flags: packet.FlagACK}, nil, 0)

	if fg.verdict.RSTFrac > 0 {
		// The forged reset carries the server's conversation state at
		// the cut; nothing after it was captured.
		emit(lastD+time.Millisecond, sIP, cIP,
			&packet.TCP{SrcPort: sPort, DstPort: cPort, Seq: rstSeq, Ack: rstAck, Flags: packet.FlagRST | packet.FlagACK}, nil, 0)
		fg.truth.Faults[string(chaos.CapRST)]++
	}
}

// dnsFlow emits a UDP query/response pair to a cloud-hosted resolver.
func (fg *flowgen) dnsFlow(idx int, cloud ipranges.Provider, h host) {
	clientIP, clientPort := clientEndpoint(idx)
	serverIP := fg.syntheticIP(cloud)
	q := dnswire.NewQuery(uint16(idx), h.name, dnswire.TypeA)
	qbuf, _ := q.Pack()
	r := q.Reply()
	r.Answers = []dnswire.RR{{Name: h.name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, IP: h.ip}}
	rbuf, _ := r.Pack()
	start, _ := fg.flowTiming(int64(len(rbuf)))

	build := func(d time.Duration, src, dst netaddr.IP, sp, dp uint16, payload []byte) int {
		n := packet.UDPFrameLen(len(payload))
		buf := fg.put(start.Add(d), n, n)
		ip := packet.IPv4{Src: src, Dst: dst}
		eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
		udp := packet.UDP{SrcPort: sp, DstPort: dp}
		packet.PutUDPFrame(buf, &eth, &ip, &udp, payload)
		return n
	}
	qn := build(0, clientIP, serverIP, clientPort, 53, qbuf)
	rn := build(15*time.Millisecond, serverIP, clientIP, 53, clientPort, rbuf)
	fg.account(cloud, KindDNS, "", int64(qn+rn))
}

// zeroPad backs all-zero payloads (ICMP echo padding, unclassified UDP
// datagrams) so emitting one costs no allocation.
var zeroPad [512]byte

// icmpFlow emits an echo request/reply pair.
func (fg *flowgen) icmpFlow(idx int, cloud ipranges.Provider) {
	clientIP, _ := clientEndpoint(idx)
	serverIP := fg.syntheticIP(cloud)
	start, _ := fg.flowTiming(100)
	build := func(d time.Duration, src, dst netaddr.IP, typ uint8) int {
		n := packet.ICMPFrameLen(56)
		buf := fg.put(start.Add(d), n, n)
		ip := packet.IPv4{Src: src, Dst: dst}
		eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
		ic := packet.ICMP{Type: typ}
		packet.PutICMPFrame(buf, &eth, &ip, &ic, zeroPad[:56])
		return n
	}
	reqN := build(0, clientIP, serverIP, 8)
	repN := build(30*time.Millisecond, serverIP, clientIP, 0)
	fg.account(cloud, KindICMP, "", int64(reqN+repN))
}

// otherUDPFlow emits a small unclassified UDP exchange.
func (fg *flowgen) otherUDPFlow(idx int, cloud ipranges.Provider) {
	clientIP, clientPort := clientEndpoint(idx)
	serverIP := fg.syntheticIP(cloud)
	start, _ := fg.flowTiming(500)
	payLen := 48 + fg.rng.Intn(400)
	build := func(d time.Duration, src, dst netaddr.IP, sp, dp uint16, payload []byte) int {
		n := packet.UDPFrameLen(len(payload))
		buf := fg.put(start.Add(d), n, n)
		ip := packet.IPv4{Src: src, Dst: dst}
		eth := packet.Ethernet{EtherType: packet.EtherTypeIPv4}
		udp := packet.UDP{SrcPort: sp, DstPort: dp}
		packet.PutUDPFrame(buf, &eth, &ip, &udp, payload)
		return n
	}
	f1 := build(0, clientIP, serverIP, clientPort, 3544, zeroPad[:payLen])
	f2 := build(40*time.Millisecond, serverIP, clientIP, 3544, clientPort, zeroPad[:32])
	fg.account(cloud, KindOtherUDP, "", int64(f1+f2))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
