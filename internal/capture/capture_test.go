package capture

import (
	"bytes"
	"math"
	"testing"
	"time"

	"cloudscope/internal/deploy"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/pcapio"
	"cloudscope/internal/stats"
)

// capWorld is a small shared world; the capture only needs host names
// and front-end IPs.
var capWorld = deploy.Generate(deploy.DefaultConfig().Scaled(2000))

func generate(t testing.TB, cfg Config) (*Truth, *Analysis) {
	t.Helper()
	var buf bytes.Buffer
	g := NewGenerator(cfg, capWorld)
	w := pcapio.NewWriter(&buf, cfg.Snaplen)
	truth, err := g.Generate(w)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(&buf, capWorld.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	return truth, a
}

func testCfg(flows int) Config {
	cfg := DefaultConfig()
	cfg.Flows = flows
	return cfg
}

func TestFlowCountRecovered(t *testing.T) {
	truth, a := generate(t, testCfg(3000))
	// Analyzer flows should match generated flows closely (tiny
	// client-endpoint collisions tolerated).
	if math.Abs(float64(len(a.Flows)-truth.TotalFlows)) > float64(truth.TotalFlows)*0.01 {
		t.Fatalf("analyzer flows %d vs truth %d", len(a.Flows), truth.TotalFlows)
	}
}

func TestTable1CloudShares(t *testing.T) {
	truth, a := generate(t, testCfg(4000))
	bytesPct, flowsPct := a.CloudShare()
	// Paper: EC2 81.7% bytes / 80.7% flows.
	if bytesPct[ipranges.EC2] < 70 || bytesPct[ipranges.EC2] > 93 {
		t.Fatalf("EC2 byte share %.1f%%, want ~82%%", bytesPct[ipranges.EC2])
	}
	if flowsPct[ipranges.EC2] < 75 || flowsPct[ipranges.EC2] > 87 {
		t.Fatalf("EC2 flow share %.1f%%, want ~81%%", flowsPct[ipranges.EC2])
	}
	// Analyzer's byte totals track truth.
	var analyzedBytes int64
	for _, f := range a.Flows {
		analyzedBytes += f.Bytes()
	}
	ratio := float64(analyzedBytes) / float64(truth.TotalBytes)
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("analyzed bytes/truth = %.3f", ratio)
	}
}

func TestTable2ProtocolShares(t *testing.T) {
	_, a := generate(t, testCfg(6000))
	bytesPct, flowsPct := a.ProtocolShare("")
	if flowsPct[KindHTTP] < 60 || flowsPct[KindHTTP] > 80 {
		t.Fatalf("HTTP flow share %.1f%%, want ~70%%", flowsPct[KindHTTP])
	}
	if flowsPct[KindDNS] < 7 || flowsPct[KindDNS] > 14 {
		t.Fatalf("DNS flow share %.1f%%, want ~10%%", flowsPct[KindDNS])
	}
	// HTTPS dominates bytes despite few flows (the dropbox effect).
	if bytesPct[KindHTTPS] < 55 {
		t.Fatalf("HTTPS byte share %.1f%%, want ~73%%", bytesPct[KindHTTPS])
	}
	if bytesPct[KindHTTPS] < bytesPct[KindHTTP] {
		t.Fatal("HTTPS should out-carry HTTP in bytes")
	}
	if flowsPct[KindHTTP] < flowsPct[KindHTTPS]*5 {
		t.Fatal("HTTP should dominate flow counts")
	}
	// Azure's UDP component is visible.
	_, azFlows := a.ProtocolShare(ipranges.Azure)
	if azFlows[KindOtherUDP] < 5 {
		t.Fatalf("Azure Other-UDP %.1f%%, want ~15%%", azFlows[KindOtherUDP])
	}
}

func TestTable5DropboxDominance(t *testing.T) {
	_, a := generate(t, testCfg(6000))
	top := a.TopDomains(ipranges.EC2, 15)
	if len(top) == 0 {
		t.Fatal("no EC2 domains")
	}
	if top[0].Domain != "dropbox.com" {
		t.Fatalf("top EC2 domain = %s, want dropbox.com", top[0].Domain)
	}
	share := float64(top[0].Bytes) / float64(a.HTTPTotalBytes())
	if share < 0.50 || share > 0.85 {
		t.Fatalf("dropbox share = %.2f, want ~0.68", share)
	}
	// Azure table led by the big Microsoft properties.
	azTop := a.TopDomains(ipranges.Azure, 15)
	if len(azTop) < 5 {
		t.Fatalf("azure top domains = %d", len(azTop))
	}
	found := map[string]bool{}
	for _, dv := range azTop {
		found[dv.Domain] = true
	}
	for _, want := range []string{"atdmt.com", "msn.com", "microsoft.com"} {
		if !found[want] {
			t.Errorf("azure top-15 missing %s: %v", want, azTop)
		}
	}
}

func TestTable6ContentTypes(t *testing.T) {
	truth, a := generate(t, testCfg(8000))
	rows := a.ContentTypes()
	if len(rows) < 8 {
		t.Fatalf("content types = %d", len(rows))
	}
	// text/html and text/plain should be the top two by bytes among
	// non-anchor HTTP traffic; verify they're both in the top 4.
	rank := map[string]int{}
	for i, r := range rows {
		rank[r.Type] = i
	}
	if rank["text/html"] > 4 || rank["text/plain"] > 4 {
		t.Fatalf("text types not dominant: %v", rows[:4])
	}
	// Analyzer's content-type byte counts track the generator's truth.
	for _, r := range rows[:3] {
		want := truth.ContentTypeBytes[r.Type]
		if want == 0 {
			continue
		}
		ratio := float64(r.Bytes) / float64(want)
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("%s bytes ratio %.2f", r.Type, ratio)
		}
	}
}

func TestFigure3FlowCDFs(t *testing.T) {
	_, a := generate(t, testCfg(8000))
	perDomain, sizes := a.FlowStats(ipranges.EC2, KindHTTP)
	if len(perDomain) < 20 || len(sizes) < 100 {
		t.Fatalf("thin data: %d domains, %d flows", len(perDomain), len(sizes))
	}
	cdf := stats.NewCDF(perDomain)
	// ~50% of domains have <1000 HTTP flows (trivially true at our
	// scale) and the distribution is heavy-tailed: max >> median.
	if cdf.Quantile(0.5) >= cdf.Quantile(1.0) {
		t.Fatal("flow-count distribution not skewed")
	}
	_, httpsSizes := a.FlowStats(ipranges.EC2, KindHTTPS)
	med := stats.Median(sizes)
	medS := stats.Median(httpsSizes)
	if medS <= med {
		t.Fatalf("HTTPS median (%v) should exceed HTTP median (%v)", medS, med)
	}
}

func TestHostnameExtraction(t *testing.T) {
	_, a := generate(t, testCfg(2000))
	var httpWithHost, httpsWithName, httpTotal, httpsTotal int
	for _, f := range a.Flows {
		switch f.Kind {
		case KindHTTP:
			httpTotal++
			if f.Host != "" {
				httpWithHost++
			}
		case KindHTTPS:
			httpsTotal++
			if f.Host != "" || f.CertCN != "" {
				httpsWithName++
			}
		}
	}
	if httpTotal == 0 || httpsTotal == 0 {
		t.Fatal("missing flows")
	}
	if float64(httpWithHost)/float64(httpTotal) < 0.98 {
		t.Fatalf("HTTP host extraction %d/%d", httpWithHost, httpTotal)
	}
	if float64(httpsWithName)/float64(httpsTotal) < 0.98 {
		t.Fatalf("HTTPS name extraction %d/%d", httpsWithName, httpsTotal)
	}
}

func TestDurationsWithinCapture(t *testing.T) {
	cfg := testCfg(1500)
	_, a := generate(t, cfg)
	for _, f := range a.Flows {
		if f.Duration() < 0 {
			t.Fatal("negative duration")
		}
		if f.Duration() > 5*time.Hour {
			t.Fatalf("duration %v exceeds cap", f.Duration())
		}
	}
}

func TestSnapTruncationStillParses(t *testing.T) {
	cfg := testCfg(1000)
	cfg.Snaplen = 256 // aggressive truncation
	_, a := generate(t, cfg)
	hosts := 0
	for _, f := range a.Flows {
		if f.Kind == KindHTTP && f.Host != "" {
			hosts++
		}
	}
	if hosts == 0 {
		t.Fatal("no hosts extracted under snap truncation")
	}
}

func TestDomainOf(t *testing.T) {
	cases := map[string]string{
		"dl.dropbox.com":      "dropbox.com",
		"dropbox.com":         "dropbox.com",
		"a.b.c.example.co.uk": "example.co.uk",
		"x.site.com.br":       "site.com.br",
		"single":              "single",
	}
	for in, want := range cases {
		if got := DomainOf(in); got != want {
			t.Errorf("DomainOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDeterministicCapture(t *testing.T) {
	var b1, b2 bytes.Buffer
	cfg := testCfg(500)
	g1 := NewGenerator(cfg, capWorld)
	g2 := NewGenerator(cfg, capWorld)
	if _, err := g1.Generate(pcapio.NewWriter(&b1, cfg.Snaplen)); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Generate(pcapio.NewWriter(&b2, cfg.Snaplen)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("captures differ across identical seeds")
	}
}
