package capture

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"cloudscope/internal/parallel"
	"cloudscope/internal/pcapio"
)

// TestAnalyzeRetainsNoPooledBuffers proves the analyzer's outputs own
// their memory: no FlowRecord field may alias a pooled block buffer
// after the block is released. Two independent mechanisms check it:
//
//  1. Poison-on-release: with pcapio.PoisonReleasedBlocks on, Release
//     scribbles 0xDB over every released buffer, so an extraction that
//     aliased block memory would have read garbage mid-analysis. The
//     generator runs under the same hook, pinning its release ordering
//     (blocks must outlive the write loop).
//  2. Mutate-after-put: after analysis completes, pooled blocks are
//     drained and overwritten through fresh reservations; a retained
//     alias in the finished Analysis would mutate under DeepEqual.
//
// Run under -race in `make check`, this doubles as the pool's
// concurrent get/release stress test.
func TestAnalyzeRetainsNoPooledBuffers(t *testing.T) {
	cfg := testCfg(600)
	raw, truth := genBytes(t, cfg)
	golden, err := Analyze(bytes.NewReader(raw), capWorld.Ranges)
	if err != nil {
		t.Fatal(err)
	}

	pcapio.PoisonReleasedBlocks = true
	defer func() { pcapio.PoisonReleasedBlocks = false }()

	raw2, truth2 := genBytes(t, cfg)
	if !bytes.Equal(raw, raw2) {
		t.Error("generator output changed under poison-on-release: a block was released before its records were written")
	}
	if !reflect.DeepEqual(truth, truth2) {
		t.Error("ground truth changed under poison-on-release")
	}

	got, err := AnalyzePar(bytes.NewReader(raw), capWorld.Ranges, parallel.Options{Workers: 4, ShardSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, golden) {
		t.Fatal("analysis changed under poison-on-release: an output field aliased a released block")
	}

	// Mutate-after-put: scribble over recycled pool memory and re-check
	// the finished analysis deep-compares clean.
	for i := 0; i < 16; i++ {
		b := pcapio.GetBlock()
		for j := 0; j < 64; j++ {
			s := b.AppendRecord(time.Unix(0, 0), 0, 1024)
			for k := range s {
				s[k] = 0xEE
			}
		}
		b.Release()
	}
	if !reflect.DeepEqual(got, golden) {
		t.Fatal("analysis mutated after pool reuse: an output field aliased a pooled buffer")
	}
}
