// Package capture produces and analyzes the border packet trace that
// drives §3 of the paper: a week-long capture at a university border
// filtered to traffic whose remote endpoint is in the published EC2 or
// Azure ranges.
//
// The generator synthesizes flows whose protocol, size, and per-domain
// volume mixes follow the paper's Tables 1, 2, 5 and 6 and Figure 3,
// and emits real packets — TCP handshakes, HTTP heads, TLS ClientHello/
// Certificate flights, DNS messages — through a snap-length pcap
// writer. Volumes are encoded the way real captures encode them:
// sequence numbers advance by the bytes transferred, so the analyzer
// recovers per-flow volume from SYN/FIN sequence deltas exactly as
// Bro's conn.log does.
//
// The analyzer is the Bro stand-in: it reassembles per-flow state from
// the pcap, classifies protocols, extracts HTTP hostnames and
// Content-Types, and TLS SNI and certificate CNs, and aggregates the
// statistics the paper reports.
package capture

import (
	"strings"
	"time"

	"cloudscope/internal/chaos"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/netaddr"
	"cloudscope/internal/parallel"
)

// Kind classifies a generated flow.
type Kind int

// Flow kinds.
const (
	KindHTTP Kind = iota
	KindHTTPS
	KindDNS
	KindICMP
	KindOtherTCP
	KindOtherUDP
)

// String names the kind as the analysis tables label it.
func (k Kind) String() string {
	switch k {
	case KindHTTP:
		return "HTTP (TCP)"
	case KindHTTPS:
		return "HTTPS (TCP)"
	case KindDNS:
		return "DNS (UDP)"
	case KindICMP:
		return "ICMP"
	case KindOtherTCP:
		return "Other (TCP)"
	case KindOtherUDP:
		return "Other (UDP)"
	}
	return "?"
}

// Kinds lists all kinds in the paper's Table 2 row order.
var Kinds = []Kind{KindICMP, KindHTTP, KindHTTPS, KindDNS, KindOtherTCP, KindOtherUDP}

// Config parameterizes trace generation.
type Config struct {
	Seed int64
	// Flows is the total number of flows in the capture (the paper's
	// week at a 7 Gbps border is scaled down; shapes are preserved).
	Flows int
	// Days is the capture length (7 in the paper).
	Days int
	// Snaplen truncates captured packets (paper captured full packets;
	// we default to 1514 so header parsing always works while data
	// volume rides on OrigLen/seq numbers).
	Snaplen int
	// Start is the capture start time.
	Start time.Time
	// Par bounds and instruments the generator's and analyzer's
	// fan-outs. The capture is bit-identical at every worker count and
	// every shard layout: each flow draws from a sub-stream keyed by
	// (Seed, flow index) and packets sort under a strict total order,
	// so the pcap is a pure function of Seed and the world; the
	// analyzer's parallel phase is a pure per-block header pre-decode
	// ahead of sequential flow assembly.
	Par parallel.Options
	// Chaos, when non-nil, injects capture-layer faults (truncated
	// flows, forged mid-stream RSTs, re-ordered segments, corrupted
	// frames, dropped records) into the generated pcap. Verdicts are
	// pure hash draws over flow identity, so the faulted capture keeps
	// every layout-invariance guarantee above.
	Chaos *chaos.Engine
}

// DefaultConfig returns a capture config matching the paper's June
// 26 – July 2, 2012 week, scaled to 60k flows.
func DefaultConfig() Config {
	return Config{
		Seed:    1,
		Flows:   60000,
		Days:    7,
		Snaplen: 1514,
		Start:   time.Date(2012, 6, 26, 0, 0, 0, 0, time.UTC),
	}
}

// Truth is the generator's ground truth, used to validate the analyzer.
type Truth struct {
	FlowsByCloud map[ipranges.Provider]int
	BytesByCloud map[ipranges.Provider]int64
	// BytesByKind/FlowsByKind are keyed by cloud then kind.
	BytesByKind map[ipranges.Provider]map[Kind]int64
	FlowsByKind map[ipranges.Provider]map[Kind]int
	// HTTPSVolumeByDomain aggregates HTTP+HTTPS bytes per domain.
	HTTPVolumeByDomain map[string]int64
	// ContentTypeBytes aggregates HTTP object bytes by content type.
	ContentTypeBytes map[string]int64
	// Faults counts injected capture faults by chaos kind name
	// ("cap-truncate", ...); empty without a chaos engine.
	Faults     map[string]int64
	TotalFlows int
	TotalBytes int64
}

// newTruth returns a Truth with every map allocated.
func newTruth() *Truth {
	return &Truth{
		FlowsByCloud:       map[ipranges.Provider]int{},
		BytesByCloud:       map[ipranges.Provider]int64{},
		BytesByKind:        map[ipranges.Provider]map[Kind]int64{ipranges.EC2: {}, ipranges.Azure: {}},
		FlowsByKind:        map[ipranges.Provider]map[Kind]int{ipranges.EC2: {}, ipranges.Azure: {}},
		HTTPVolumeByDomain: map[string]int64{},
		ContentTypeBytes:   map[string]int64{},
		Faults:             map[string]int64{},
	}
}

// merge folds o into t. Every field is a sum, so the result does not
// depend on merge order — but callers still fold shards in shard order
// to keep the invariant obvious.
func (t *Truth) merge(o *Truth) {
	t.TotalFlows += o.TotalFlows
	t.TotalBytes += o.TotalBytes
	for c, v := range o.FlowsByCloud {
		t.FlowsByCloud[c] += v
	}
	for c, v := range o.BytesByCloud {
		t.BytesByCloud[c] += v
	}
	for c, m := range o.FlowsByKind {
		if t.FlowsByKind[c] == nil {
			t.FlowsByKind[c] = map[Kind]int{}
		}
		for k, v := range m {
			t.FlowsByKind[c][k] += v
		}
	}
	for c, m := range o.BytesByKind {
		if t.BytesByKind[c] == nil {
			t.BytesByKind[c] = map[Kind]int64{}
		}
		for k, v := range m {
			t.BytesByKind[c][k] += v
		}
	}
	for d, v := range o.HTTPVolumeByDomain {
		t.HTTPVolumeByDomain[d] += v
	}
	for ct, v := range o.ContentTypeBytes {
		t.ContentTypeBytes[ct] += v
	}
	for k, v := range o.Faults {
		t.Faults[k] += v
	}
}

// campusNet is the university prefix clients come from (anonymized in
// the paper; one /16 here).
var campusNet = netaddr.MustParseCIDR("128.105.0.0/16")

// InCampus reports whether ip is a university client address.
func InCampus(ip netaddr.IP) bool { return campusNet.Contains(ip) }

// DomainOf reduces a host name to its registered domain, handling the
// two-level public suffixes the synthetic population uses.
func DomainOf(host string) string {
	host = strings.TrimSuffix(strings.ToLower(host), ".")
	labels := strings.Split(host, ".")
	if len(labels) <= 2 {
		return host
	}
	// Two-label public suffixes in use: co.uk, com.br.
	last2 := strings.Join(labels[len(labels)-2:], ".")
	if last2 == "co.uk" || last2 == "com.br" {
		if len(labels) >= 3 {
			return strings.Join(labels[len(labels)-3:], ".")
		}
	}
	return last2
}
