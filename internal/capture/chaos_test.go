package capture

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"cloudscope/internal/chaos"
	"cloudscope/internal/parallel"
	"cloudscope/internal/pcapio"
	"cloudscope/internal/telemetry"
)

// chaosCfg builds a capture config running under a library scenario.
func chaosCfg(t testing.TB, flows int, scenario string, seed int64) Config {
	t.Helper()
	sc, err := chaos.Load(scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(flows)
	cfg.Seed = seed
	cfg.Chaos = chaos.New(sc, seed)
	return cfg
}

// TestCaptureFaultDeterminism: the faulted pcap is still a pure
// function of seed + world — byte-identical, with identical ground
// truth and identical completeness accounting, at every worker count
// and shard layout, for multiple seeds. This is the tentpole guarantee:
// fault verdicts are hash draws over flow identity, never over
// execution layout.
func TestCaptureFaultDeterminism(t *testing.T) {
	completenessOf := func(raw []byte) []telemetry.StageCompleteness {
		tel := telemetry.NewCompleteness()
		if _, err := AnalyzeOpts(bytes.NewReader(raw), capWorld.Ranges,
			AnalyzeOptions{Completeness: tel}); err != nil {
			t.Fatal(err)
		}
		return tel.Snapshot()
	}
	for _, seed := range []int64{3, 11} {
		cfg := chaosCfg(t, 900, "hostile-capture", seed)
		cfg.Par = parallel.Options{Workers: 1, ShardSize: 0}
		golden, goldenTruth := genBytes(t, cfg)
		goldenSum := sha256.Sum256(golden)
		goldenComp := completenessOf(golden)
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			for _, shard := range []int{0, 1, 23, 64} {
				if workers == 1 && shard == 0 {
					continue
				}
				pcfg := chaosCfg(t, 900, "hostile-capture", seed)
				pcfg.Par = parallel.Options{Workers: workers, ShardSize: shard}
				got, truth := genBytes(t, pcfg)
				if sha256.Sum256(got) != goldenSum {
					t.Errorf("seed %d: faulted pcap differs at Workers=%d ShardSize=%d", seed, workers, shard)
				}
				if !reflect.DeepEqual(truth, goldenTruth) {
					t.Errorf("seed %d: ground truth differs at Workers=%d ShardSize=%d", seed, workers, shard)
				}
				if !reflect.DeepEqual(completenessOf(got), goldenComp) {
					t.Errorf("seed %d: completeness differs at Workers=%d ShardSize=%d", seed, workers, shard)
				}
			}
		}
	}
}

// TestCaptureFaultsObservable: every fault kind in the lossy-capture
// scenario fires, the ground truth counts it, and the hardened analyzer
// folds the damage into symptoms instead of failing.
func TestCaptureFaultsObservable(t *testing.T) {
	clean, cleanTruth := genBytes(t, testCfg(1200))
	cfg := chaosCfg(t, 1200, "lossy-capture", 1)
	raw, truth := genBytes(t, cfg)

	for _, k := range []chaos.Kind{chaos.CapTruncate, chaos.CapRST, chaos.CapReorder,
		chaos.CapCorrupt, chaos.CapDrop} {
		if truth.Faults[string(k)] == 0 {
			t.Errorf("fault %s never fired (faults: %v)", k, truth.Faults)
		}
	}
	if len(cleanTruth.Faults) != 0 {
		t.Fatalf("fault counts without a chaos engine: %v", cleanTruth.Faults)
	}

	tel := telemetry.NewCompleteness()
	a, err := AnalyzeOpts(bytes.NewReader(raw), capWorld.Ranges, AnalyzeOptions{Completeness: tel})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := Analyze(bytes.NewReader(clean), capWorld.Ranges)
	if err != nil {
		t.Fatal(err)
	}
	if a.RSTFlows == 0 || a.Reordered == 0 || a.PartialTCP == 0 {
		t.Fatalf("symptoms unseen: rst=%d reordered=%d partial=%d", a.RSTFlows, a.Reordered, a.PartialTCP)
	}
	if ca.RSTFlows != 0 || ca.Reordered != 0 || ca.PartialTCP != 0 {
		t.Fatalf("clean capture reports symptoms: rst=%d reordered=%d partial=%d",
			ca.RSTFlows, ca.Reordered, ca.PartialTCP)
	}
	if a.DecodeErrs == 0 {
		t.Fatal("no corrupted frame produced a decode error")
	}
	if a.Records >= ca.Records {
		t.Fatalf("dropped records did not shrink the capture: %d vs clean %d", a.Records, ca.Records)
	}

	// Partial flows keep a volume estimate: total analyzed volume stays
	// within sight of the clean capture's rather than collapsing.
	var cleanVol, faultVol int64
	for _, f := range ca.Flows {
		cleanVol += f.Bytes()
	}
	for _, f := range a.Flows {
		faultVol += f.Bytes()
	}
	if faultVol < cleanVol/2 {
		t.Fatalf("faulted volume %d collapsed vs clean %d — partial-flow estimation lost", faultVol, cleanVol)
	}

	// Completeness tells the same story through the telemetry stage.
	flows, ok := tel.Stage("capture/flows")
	if !ok || flows.Attempted == 0 {
		t.Fatal("no capture/flows completeness recorded")
	}
	if flows.Retried == 0 {
		t.Fatal("no partial flow recovered through sequence bookkeeping")
	}
	frames, ok := tel.Stage("capture/frames")
	if !ok || frames.Abandoned == 0 || frames.Attempted != int64(a.Records) {
		t.Fatalf("capture/frames accounting off: %+v vs %d records", frames, a.Records)
	}
	if frames.Attempted != frames.Succeeded+frames.Abandoned {
		t.Fatalf("frames invariant broken: %+v", frames)
	}
}

// TestAnalyzeTruncatedPcap: a capture chopped mid-record surfaces as a
// typed ErrTruncated from the analyzer — never a panic, never a silent
// partial result.
func TestAnalyzeTruncatedPcap(t *testing.T) {
	raw, _ := genBytes(t, testCfg(40))
	for _, cut := range []int{len(raw) - 5, 24 + 8} {
		_, err := Analyze(bytes.NewReader(raw[:cut]), capWorld.Ranges)
		if !errors.Is(err, pcapio.ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	// A cut at a record boundary is a clean EOF, not an error.
	rd, err := pcapio.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	boundary := 24 + 16 + len(rec.Data)
	if _, err := Analyze(bytes.NewReader(raw[:boundary]), capWorld.Ranges); err != nil {
		t.Fatalf("boundary cut: %v", err)
	}
}

// TestCaptureChaosRace is the -race smoke: a faulted generate+analyze
// at full parallelism, exercising the chaos draw path from every
// worker. Verdicts are pure hashes, so there is nothing to synchronize
// — this test proves it.
func TestCaptureChaosRace(t *testing.T) {
	cfg := chaosCfg(t, 600, "hostile-capture", 7)
	cfg.Par = parallel.Options{Workers: runtime.GOMAXPROCS(0), ShardSize: 16}
	raw, _ := genBytes(t, cfg)
	if _, err := AnalyzePar(bytes.NewReader(raw), capWorld.Ranges,
		parallel.Options{Workers: runtime.GOMAXPROCS(0), ShardSize: 8}); err != nil {
		t.Fatal(err)
	}
}
