// Package wordlist provides the subdomain-label dictionary shared by the
// world generator and the dnsmap/knock-style brute-force discovery. The
// paper's methodology is a lower bound precisely because brute forcing
// only finds labels in its dictionary; the generator draws most — but
// not all — labels from this list so the reproduction keeps that
// property.
package wordlist

// Common returns the brute-force dictionary in rank order: the paper's
// observed top prefixes first (www, m, ftp, cdn, mail, staging, blog,
// support, test, dev), then the rest of a dnsmap/knock-merged list.
func Common() []string {
	return append([]string(nil), words...)
}

// Len returns the dictionary size.
func Len() int { return len(words) }

var words = []string{
	// Top-10 prefixes reported in §3.2, in order.
	"www", "m", "ftp", "cdn", "mail", "staging", "blog", "support", "test", "dev",
	// Remainder of the merged dnsmap+knock list.
	"api", "app", "apps", "admin", "assets", "auth", "beta", "billing",
	"bounce", "calendar", "chat", "client", "cloud", "cms", "community",
	"connect", "console", "contact", "content", "corp", "crm", "css",
	"data", "db", "demo", "direct", "dl", "dns", "docs", "download",
	"edge", "email", "en", "events", "extranet", "feedback", "files",
	"forum", "forums", "ftp2", "gallery", "games", "gateway", "git",
	"go", "help", "home", "host", "hr", "id", "images", "img", "imap",
	"info", "internal", "intranet", "invoice", "js", "jobs", "lab",
	"labs", "legacy", "link", "lists", "live", "login", "mail2", "manage",
	"map", "maps", "marketing", "media", "members", "mobile", "monitor",
	"mx", "my", "news", "newsletter", "ns", "ns1", "ns2", "oauth",
	"office", "old", "order", "orders", "origin", "panel", "partner",
	"partners", "pay", "payment", "payments", "photos", "pop", "portal",
	"post", "press", "preview", "private", "prod", "production", "promo",
	"proxy", "pub", "public", "qa", "redirect", "register", "remote",
	"reports", "research", "reseller", "rest", "reviews", "rss", "s1",
	"s2", "s3", "sales", "sandbox", "search", "secure", "security",
	"server", "service", "services", "share", "shop", "signup", "site",
	"sites", "smtp", "social", "sso", "stage", "stat", "static", "stats",
	"status", "store", "stream", "streaming", "survey", "svn", "sync",
	"team", "testing", "tickets", "tools", "track", "tracking", "train",
	"training", "translate", "travel", "tv", "upload", "uploads", "us",
	"user", "users", "vault", "video", "videos", "vip", "voip", "vpn",
	"web", "web1", "web2", "webmail", "widget", "widgets", "wiki", "work",
	"ws", "www2", "www3", "ww", "staging2", "edge2", "cdn2", "img2",
	"alpha", "analytics", "archive", "backup", "bb", "beta2", "bi",
	"board", "book", "booking", "build", "cache", "careers", "cart",
	"catalog", "cc", "central", "check", "checkout", "ci", "click",
	"clients", "code", "config", "core", "da", "dashboard", "de",
	"deploy", "design", "developer", "developers", "directory", "discuss",
	"dist", "donate", "e", "edit", "editor", "education", "es", "eu",
	"exchange", "f", "fb", "feed", "feeds", "finance", "fr", "fs", "ftp1",
	"g", "get", "gis", "global", "graph", "group", "groups", "health",
	"helpdesk", "hello", "history", "hub", "i", "image", "in", "index",
	"it", "jenkins", "jira", "jp", "kb", "lb", "learn", "learning",
	"library", "local", "log", "logs", "mars", "master", "mdm", "meet",
	"mercury", "metrics", "mirror", "mob", "mobi", "moodle", "music",
	"net", "new", "next", "node", "nl", "online", "open", "ops", "owa",
	"page", "pages", "passport", "pdf", "phone", "play", "pm", "pr",
	"print", "profile", "project", "projects", "pt", "radio", "read",
	"relay", "repo", "resources", "ru", "school", "script", "sdk",
	"send", "seo", "shop2", "signin", "sip", "sms", "soap", "sport",
	"sports", "sql", "src", "ssl", "start", "storage", "student", "style",
	"submit", "subscribe", "terminal", "theme", "themes", "time", "trac",
	"trade", "update", "updates", "uk", "v1", "v2", "vm", "vote", "w",
	"wap", "weather", "webdav", "webservices", "webstore", "win", "wp",
	"write", "x", "xml", "zeus", "zone",
}
