package wordlist

import "testing"

func TestCommonShape(t *testing.T) {
	words := Common()
	if len(words) != Len() {
		t.Fatalf("Len %d != len(Common) %d", Len(), len(words))
	}
	if len(words) < 300 {
		t.Fatalf("dictionary too small: %d", len(words))
	}
	// The paper's observed top-10 prefixes lead the list, in order.
	wantTop := []string{"www", "m", "ftp", "cdn", "mail", "staging", "blog", "support", "test", "dev"}
	for i, w := range wantTop {
		if words[i] != w {
			t.Fatalf("words[%d] = %q, want %q", i, words[i], w)
		}
	}
	// No duplicates; all lowercase DNS-safe labels.
	seen := map[string]bool{}
	for _, w := range words {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if w == "" || len(w) > 63 {
			t.Fatalf("bad label %q", w)
		}
		for i := 0; i < len(w); i++ {
			c := w[i]
			if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_') {
				t.Fatalf("label %q has invalid byte %q", w, c)
			}
		}
	}
}

func TestCommonReturnsCopy(t *testing.T) {
	a := Common()
	a[0] = "mutated"
	if Common()[0] != "www" {
		t.Fatal("Common returned shared backing array")
	}
}
