// Package load is cloudload's engine: a seeded, deterministic HTTP
// load generator for cloudscoped. The request *plan* — which endpoint
// each request hits and, in open-loop mode, when it is due — is a pure
// function of (seed, mix, rate), so two runs against the same daemon
// issue byte-identical request sequences; only wall-clock timing and
// the daemon's answers vary.
//
// Open-loop mode (Rate > 0) fires requests at exponential
// inter-arrivals regardless of completions, bounded by Concurrency:
// requests that would exceed the in-flight cap are counted as shed —
// the honest open-loop way to report an overloaded target. Closed-loop
// mode (Rate <= 0) keeps exactly Concurrency requests in flight, which
// measures the target's saturated throughput.
package load

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"cloudscope/internal/xrand"
)

// MixEntry weights one endpoint path in the request mix.
type MixEntry struct {
	Weight float64
	Path   string // e.g. "/v1/patterns" or "/v1/domain?name=a.example"
}

// ParseMix parses "3:/v1/patterns,1:/v1/wanperf" into a mix.
func ParseMix(s string) ([]MixEntry, error) {
	var mix []MixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		weight := 1.0
		path := part
		if i := strings.Index(part, ":"); i >= 0 && !strings.HasPrefix(part, "/") {
			if _, err := fmt.Sscanf(part[:i], "%f", &weight); err != nil {
				return nil, fmt.Errorf("load: bad mix weight %q", part[:i])
			}
			path = part[i+1:]
		}
		if !strings.HasPrefix(path, "/") {
			return nil, fmt.Errorf("load: mix path %q must start with /", path)
		}
		mix = append(mix, MixEntry{Weight: weight, Path: path})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("load: empty mix")
	}
	return mix, nil
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	Mix     []MixEntry
	// Requests is the total request budget.
	Requests int
	// Rate is the open-loop arrival rate in req/s; <= 0 selects
	// closed-loop mode.
	Rate float64
	// Concurrency bounds in-flight requests (default 64).
	Concurrency int
	// Seed drives the endpoint sequence and arrival schedule.
	Seed int64
	// Client overrides the HTTP client (default: shared transport with
	// generous connection reuse).
	Client *http.Client
}

// EndpointStats aggregates one mix path's outcomes.
type EndpointStats struct {
	Path      string  `json:"path"`
	Sent      int     `json:"sent"`
	OK        int     `json:"ok"`
	Errors    int     `json:"errors"`
	MeanMs    float64 `json:"mean_ms"`
	P99Ms     float64 `json:"p99_ms"`
	latencies []float64
}

// Result is one run's report.
type Result struct {
	Requests int           `json:"requests"`
	Sent     int           `json:"sent"`
	OK       int           `json:"ok"`
	Errors   int           `json:"errors"`
	Shed     int           `json:"shed"`
	Duration time.Duration `json:"duration_ns"`
	// Throughput counts completed (OK + error) responses per second.
	Throughput float64 `json:"throughput_rps"`
	// Latency quantiles over completed requests, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// StatusCounts maps status code → count, sorted keys in Report.
	StatusCounts map[int]int      `json:"status_counts"`
	Endpoints    []*EndpointStats `json:"endpoints"`
}

// plan precomputes the deterministic request sequence.
type plan struct {
	paths []string        // request i → path
	due   []time.Duration // open-loop: request i's offset from start (nil closed-loop)
}

func buildPlan(cfg Config) *plan {
	rng := xrand.SplitSeeded(cfg.Seed, "load/plan")
	weights := make([]float64, len(cfg.Mix))
	for i, m := range cfg.Mix {
		weights[i] = m.Weight
	}
	w := xrand.NewWeighted(rng.Split("mix"), weights)
	p := &plan{paths: make([]string, cfg.Requests)}
	for i := range p.paths {
		p.paths[i] = cfg.Mix[w.Next()].Path
	}
	if cfg.Rate > 0 {
		arr := rng.Split("arrivals")
		p.due = make([]time.Duration, cfg.Requests)
		var t float64 // seconds
		for i := range p.due {
			t += arr.ExpFloat64() / cfg.Rate
			p.due[i] = time.Duration(t * float64(time.Second))
		}
	}
	return p
}

// Run executes the load plan and aggregates the report.
func Run(cfg Config) (*Result, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("load: Requests must be positive")
	}
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("load: empty mix")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency * 2,
			MaxIdleConnsPerHost: cfg.Concurrency * 2,
		}}
	}
	p := buildPlan(cfg)

	type outcome struct {
		pathIdx int
		status  int
		ms      float64
		err     bool
		shed    bool
	}
	outcomes := make([]outcome, cfg.Requests)
	pathIdx := map[string]int{}
	for i, m := range cfg.Mix {
		pathIdx[m.Path] = i
	}

	fire := func(i int) {
		o := &outcomes[i]
		o.pathIdx = pathIdx[p.paths[i]]
		t0 := time.Now()
		resp, err := client.Get(cfg.BaseURL + p.paths[i])
		o.ms = float64(time.Since(t0)) / float64(time.Millisecond)
		if err != nil {
			o.err = true
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		o.status = resp.StatusCode
		if resp.StatusCode >= 400 {
			o.err = true
		}
	}

	start := time.Now()
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	if p.due == nil {
		// Closed loop: Concurrency requests always in flight.
		for i := 0; i < cfg.Requests; i++ {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				fire(i)
			}(i)
		}
	} else {
		// Open loop: fire on schedule; a full in-flight window sheds.
		for i := 0; i < cfg.Requests; i++ {
			if d := time.Until(start.Add(p.due[i])); d > 0 {
				time.Sleep(d)
			}
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer func() { <-sem }()
					fire(i)
				}(i)
			default:
				outcomes[i].shed = true
				outcomes[i].pathIdx = pathIdx[p.paths[i]]
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Requests:     cfg.Requests,
		Duration:     elapsed,
		StatusCounts: map[int]int{},
	}
	perPath := make([]*EndpointStats, len(cfg.Mix))
	for i, m := range cfg.Mix {
		perPath[i] = &EndpointStats{Path: m.Path}
	}
	var all []float64
	for i := range outcomes {
		o := &outcomes[i]
		es := perPath[o.pathIdx]
		if o.shed {
			res.Shed++
			continue
		}
		res.Sent++
		es.Sent++
		if o.err {
			res.Errors++
			es.Errors++
		} else {
			res.OK++
			es.OK++
		}
		if o.status != 0 {
			res.StatusCounts[o.status]++
		}
		all = append(all, o.ms)
		es.latencies = append(es.latencies, o.ms)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.Throughput = float64(res.Sent) / secs
	}
	sort.Float64s(all)
	res.P50Ms = quantile(all, 0.50)
	res.P90Ms = quantile(all, 0.90)
	res.P99Ms = quantile(all, 0.99)
	if len(all) > 0 {
		res.MaxMs = all[len(all)-1]
	}
	for _, es := range perPath {
		sort.Float64s(es.latencies)
		es.P99Ms = quantile(es.latencies, 0.99)
		var sum float64
		for _, v := range es.latencies {
			sum += v
		}
		if len(es.latencies) > 0 {
			es.MeanMs = sum / float64(len(es.latencies))
		}
		es.latencies = nil
		res.Endpoints = append(res.Endpoints, es)
	}
	return res, nil
}

// quantile reads the q-th quantile from sorted samples (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Report renders the result for terminals.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests: %d sent, %d ok, %d errors, %d shed\n", r.Sent, r.OK, r.Errors, r.Shed)
	fmt.Fprintf(&b, "duration: %.2fs  throughput: %.1f req/s\n", r.Duration.Seconds(), r.Throughput)
	fmt.Fprintf(&b, "latency ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f\n", r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs)
	codes := make([]int, 0, len(r.StatusCounts))
	for c := range r.StatusCounts {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "  status %d: %d\n", c, r.StatusCounts[c])
	}
	for _, es := range r.Endpoints {
		fmt.Fprintf(&b, "  %-40s sent=%-6d ok=%-6d err=%-4d mean=%.2fms p99=%.2fms\n",
			es.Path, es.Sent, es.OK, es.Errors, es.MeanMs, es.P99Ms)
	}
	return b.String()
}
