package alexa

import (
	"fmt"
	"strings"

	"cloudscope/internal/xrand"
)

// Stream generates the ranked list incrementally, in rank order, so a
// 1M-domain study never holds the whole population at once. Generate
// is a drain of a Stream, so the two paths produce identical domains
// by construction.
type Stream struct {
	n        int
	next     int // next 1-based rank to emit
	nameRNG  *xrand.Rand
	geoRNG   *xrand.Rand
	pop      *xrand.Weighted
	tldPick  *xrand.Weighted
	anchored map[int]string
	used     *nameSet
}

// NewStream prepares an n-domain stream with anchors pinned at their
// ranks, deterministic in seed.
func NewStream(n int, seed int64, anchors []Anchor) *Stream {
	rng := xrand.SplitSeeded(seed, "alexa")
	s := &Stream{
		n:        n,
		next:     1,
		nameRNG:  rng.Split("names"),
		geoRNG:   rng.Split("geo"),
		anchored: make(map[int]string),
		used:     newNameSet(n),
	}
	s.pop = xrand.NewWeighted(s.geoRNG, shares(globalWebPopulation))
	s.tldPick = xrand.NewWeighted(s.nameRNG, tldWeights)
	for _, a := range anchors {
		if a.Rank >= 1 && a.Rank <= n {
			s.anchored[a.Rank] = a.Name
		}
	}
	return s
}

// Total returns the stream's full list size.
func (s *Stream) Total() int { return s.n }

// Remaining returns how many domains are still to be emitted.
func (s *Stream) Remaining() int { return s.n - s.next + 1 }

// Next emits the next min(k, Remaining) domains in rank order; nil once
// the stream is exhausted. k <= 0 drains the stream.
func (s *Stream) Next(k int) []*Domain {
	rem := s.Remaining()
	if rem <= 0 {
		return nil
	}
	if k <= 0 || k > rem {
		k = rem
	}
	out := make([]*Domain, 0, k)
	for i := 0; i < k; i++ {
		rank := s.next
		s.next++
		name, isAnchor := s.anchored[rank]
		if isAnchor {
			s.used.add(name)
		} else {
			for tries := 0; ; tries++ {
				name = synthName(s.nameRNG, s.tldPick)
				if tries >= 4 {
					// The syllable space is finite; guarantee progress
					// at large list sizes.
					dot := strings.IndexByte(name, '.')
					name = fmt.Sprintf("%s%d%s", name[:dot], rank, name[dot:])
				}
				if s.used.add(name) {
					break
				}
			}
		}
		d := &Domain{Rank: rank, Name: name}
		d.Clients = clientMix(s.geoRNG, s.pop)
		out = append(out, d)
	}
	return out
}

// nameSet is a compact dedup set over generated names: open-addressed
// 64-bit FNV-1a hashes, 8 bytes per entry instead of a retained string
// plus map overhead — the difference between ~16MB and ~80MB of
// permanent residue at 1M domains. A hash collision between distinct
// names only causes one extra (deterministic) retry draw.
type nameSet struct {
	slots []uint64
	n     int
}

func newNameSet(hint int) *nameSet {
	size := 64
	for size < 2*hint {
		size <<= 1
	}
	return &nameSet{slots: make([]uint64, size)}
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1 // 0 marks an empty slot
	}
	return h
}

// add inserts name and reports whether it was absent.
func (ns *nameSet) add(name string) bool {
	if 2*ns.n >= len(ns.slots) {
		ns.grow()
	}
	h := hashName(name)
	mask := uint64(len(ns.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch ns.slots[i] {
		case 0:
			ns.slots[i] = h
			ns.n++
			return true
		case h:
			return false
		}
	}
}

func (ns *nameSet) grow() {
	old := ns.slots
	ns.slots = make([]uint64, 2*len(old))
	mask := uint64(len(ns.slots) - 1)
	for _, h := range old {
		if h == 0 {
			continue
		}
		for i := h & mask; ; i = (i + 1) & mask {
			if ns.slots[i] == 0 {
				ns.slots[i] = h
				break
			}
		}
	}
}
