package alexa

import (
	"math"
	"strings"
	"testing"
)

func TestGenerateBasics(t *testing.T) {
	l := Generate(1000, 1, DefaultAnchors)
	if l.Len() != 1000 {
		t.Fatalf("len = %d", l.Len())
	}
	seen := map[string]bool{}
	for i, d := range l.Domains {
		if d.Rank != i+1 {
			t.Fatalf("rank %d at index %d", d.Rank, i)
		}
		if seen[d.Name] {
			t.Fatalf("duplicate domain %s", d.Name)
		}
		seen[d.Name] = true
		if !strings.Contains(d.Name, ".") {
			t.Fatalf("bad name %q", d.Name)
		}
	}
}

func TestAnchorsPlaced(t *testing.T) {
	l := Generate(1000, 2, DefaultAnchors)
	for _, a := range DefaultAnchors {
		if a.Rank > 1000 {
			continue
		}
		if got := l.Rank(a.Rank).Name; got != a.Name {
			t.Errorf("rank %d = %q, want %q", a.Rank, got, a.Name)
		}
		d, ok := l.Lookup(a.Name)
		if !ok || d.Rank != a.Rank {
			t.Errorf("Lookup(%q) = %+v, %v", a.Name, d, ok)
		}
	}
}

func TestAnchorBeyondNIgnored(t *testing.T) {
	l := Generate(50, 3, []Anchor{{Rank: 100, Name: "toolate.com"}})
	if _, ok := l.Lookup("toolate.com"); ok {
		t.Fatal("out-of-range anchor placed")
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(500, 42, DefaultAnchors)
	b := Generate(500, 42, DefaultAnchors)
	for i := range a.Domains {
		if a.Domains[i].Name != b.Domains[i].Name {
			t.Fatalf("name differs at rank %d", i+1)
		}
		if a.Domains[i].CustomerCountry() != b.Domains[i].CustomerCountry() {
			t.Fatalf("client mix differs at rank %d", i+1)
		}
	}
	c := Generate(500, 43, DefaultAnchors)
	diff := 0
	for i := range a.Domains {
		if a.Domains[i].Name != c.Domains[i].Name {
			diff++
		}
	}
	if diff < 100 {
		t.Fatalf("different seeds produced near-identical lists (%d diffs)", diff)
	}
}

func TestClientMixSumsToOne(t *testing.T) {
	l := Generate(300, 4, nil)
	for _, d := range l.Domains {
		sum := 0.0
		for i, c := range d.Clients {
			if c.Share <= 0 {
				t.Fatalf("%s client %d share %f", d.Name, i, c.Share)
			}
			sum += c.Share
		}
		if math.Abs(sum-1) > 0.02 {
			t.Fatalf("%s client shares sum to %f", d.Name, sum)
		}
		for i := 1; i < len(d.Clients); i++ {
			if d.Clients[i].Share > d.Clients[i-1].Share {
				t.Fatalf("%s client shares unsorted", d.Name)
			}
		}
	}
}

func TestCustomerCountryDistribution(t *testing.T) {
	l := Generate(2000, 5, nil)
	counts := map[string]int{}
	for _, d := range l.Domains {
		counts[d.CustomerCountry()]++
	}
	if counts["US"] < counts["SG"] {
		t.Fatalf("US (%d) should dominate SG (%d)", counts["US"], counts["SG"])
	}
	if len(counts) < 10 {
		t.Fatalf("only %d customer countries", len(counts))
	}
}

func TestRankBounds(t *testing.T) {
	l := Generate(10, 6, nil)
	if l.Rank(0) != nil || l.Rank(11) != nil {
		t.Fatal("out-of-range Rank should be nil")
	}
	if l.Rank(1) == nil || l.Rank(10) == nil {
		t.Fatal("in-range Rank nil")
	}
}

func TestWebInfoService(t *testing.T) {
	l := Generate(1000, 7, DefaultAnchors)
	w := NewWebInfoService(l, 0.75, 7)
	covered := 0
	for _, d := range l.Domains {
		cc, ok := w.CustomerCountry(d.Name)
		if ok {
			covered++
			if cc != d.CustomerCountry() {
				t.Fatalf("%s: CC %q != %q", d.Name, cc, d.CustomerCountry())
			}
		}
		// Determinism per domain.
		cc2, ok2 := w.CustomerCountry(d.Name)
		if ok != ok2 || cc != cc2 {
			t.Fatal("coverage not deterministic per domain")
		}
	}
	frac := float64(covered) / float64(l.Len())
	if frac < 0.68 || frac > 0.82 {
		t.Fatalf("coverage = %.2f, want ~0.75", frac)
	}
	if _, ok := w.CustomerCountry("not-a-domain.zz"); ok {
		t.Fatal("unknown domain covered")
	}
}
