// Package alexa generates the ranked web population standing in for
// Alexa's top-1M list, plus the Alexa Web Information Service's
// per-domain client geography (used by the paper's §4.2 customer-country
// analysis).
//
// The list can embed "anchor" domains — real names at their real 2013
// ranks (amazon.com at 9, linkedin.com at 13, ...) — so the top-domain
// tables read like the paper's. Everything else is synthetic, with
// popularity skew and a US/CN-heavy client geography matching the
// 2013 web.
package alexa

import (
	"fmt"
	"sort"
	"strings"

	"cloudscope/internal/xrand"
)

// CountryShare is one country's fraction of a domain's client base.
type CountryShare struct {
	Country string
	Share   float64
}

// Domain is one ranked website.
type Domain struct {
	Rank    int // 1-based Alexa rank
	Name    string
	Clients []CountryShare // descending by share; sums to ~1
}

// CustomerCountry returns the country contributing the largest client
// share — the paper's "customer country" definition.
func (d *Domain) CustomerCountry() string {
	if len(d.Clients) == 0 {
		return ""
	}
	return d.Clients[0].Country
}

// List is a ranked population of domains.
type List struct {
	Domains []*Domain // index i holds rank i+1
	byName  map[string]*Domain
}

// Anchor pins a real domain name at a real rank.
type Anchor struct {
	Rank int
	Name string
}

// DefaultAnchors reproduces the paper's top cloud-using domains
// (Tables 4, 8, 10, 15) at their published Alexa ranks.
var DefaultAnchors = []Anchor{
	{7, "live.com"}, {9, "amazon.com"}, {13, "linkedin.com"}, {18, "msn.com"},
	{20, "bing.com"}, {29, "163.com"}, {31, "microsoft.com"}, {35, "pinterest.com"},
	{36, "fc2.com"}, {38, "conduit.com"}, {42, "ask.com"}, {47, "apple.com"},
	{48, "imdb.com"}, {51, "hao123.com"}, {59, "go.com"},
	{75, "instagram.com"}, {92, "netflix.com"}, {119, "dropbox.com"}, {137, "vimeo.com"},
	{615, "foursquare.com"}, {799, "zynga.com"},
}

// globalWebPopulation weights countries by their 2013 share of web
// users; domains draw their dominant client country from it.
var globalWebPopulation = []CountryShare{
	{"US", 0.26}, {"CN", 0.15}, {"IN", 0.08}, {"JP", 0.05}, {"BR", 0.05},
	{"DE", 0.045}, {"GB", 0.04}, {"RU", 0.04}, {"FR", 0.035}, {"KR", 0.025},
	{"MX", 0.02}, {"IT", 0.02}, {"ES", 0.018}, {"CA", 0.018}, {"ID", 0.018},
	{"TW", 0.012}, {"AU", 0.012}, {"NL", 0.012}, {"PL", 0.012}, {"AR", 0.01},
	{"TH", 0.01}, {"SG", 0.006}, {"HK", 0.006}, {"ZA", 0.006}, {"EG", 0.006},
	{"NG", 0.005}, {"CL", 0.005}, {"NZ", 0.003}, {"IE", 0.003},
}

var tlds = []string{".com", ".net", ".org", ".info", ".co", ".io", ".ru", ".de", ".cn", ".jp", ".co.uk", ".com.br", ".fr", ".in"}
var tldWeights = []float64{52, 10, 8, 3, 2, 2, 5, 4, 4, 3, 2.5, 2, 1.5, 1}

var syllables = []string{
	"ka", "mo", "ra", "ti", "zen", "lu", "vex", "net", "blu", "pix",
	"sol", "mar", "qui", "ta", "ren", "go", "fy", "hub", "sta", "dex",
	"cло", "no", "mi", "ve", "press", "shop", "media", "tech", "soft", "ware",
}

// Generate builds an n-domain list with anchors pinned at their ranks.
// Synthetic names are deterministic in seed. It is exactly a drain of
// NewStream — chunked and whole-list generation cannot disagree.
func Generate(n int, seed int64, anchors []Anchor) *List {
	s := NewStream(n, seed, anchors)
	l := &List{byName: make(map[string]*Domain, n)}
	for {
		ds := s.Next(1 << 16)
		if len(ds) == 0 {
			return l
		}
		for _, d := range ds {
			l.Domains = append(l.Domains, d)
			l.byName[d.Name] = d
		}
	}
}

func shares(cs []CountryShare) []float64 {
	out := make([]float64, len(cs))
	for i, c := range cs {
		out[i] = c.Share
	}
	return out
}

func synthName(rng *xrand.Rand, tldPick *xrand.Weighted) string {
	var sb strings.Builder
	k := 2 + rng.Intn(3)
	for i := 0; i < k; i++ {
		s := syllables[rng.Intn(len(syllables))]
		if !isASCII(s) {
			s = "lo"
		}
		sb.WriteString(s)
	}
	if rng.Bool(0.15) {
		sb.WriteString(fmt.Sprintf("%d", rng.Intn(100)))
	}
	return sb.String() + tlds[tldPick.Next()]
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// clientMix draws a dominant country plus a long tail.
func clientMix(rng *xrand.Rand, pop *xrand.Weighted) []CountryShare {
	top := globalWebPopulation[pop.Next()].Country
	topShare := 0.30 + rng.Float64()*0.35
	remaining := 1 - topShare
	others := 3 + rng.Intn(6)
	mix := []CountryShare{{Country: top, Share: topShare}}
	seen := map[string]bool{top: true}
	for i := 0; i < others && remaining > 0.01; i++ {
		c := globalWebPopulation[pop.Next()].Country
		if seen[c] {
			continue
		}
		seen[c] = true
		share := remaining * (0.2 + rng.Float64()*0.5)
		if i == others-1 {
			share = remaining
		}
		mix = append(mix, CountryShare{Country: c, Share: share})
		remaining -= share
	}
	// Duplicate draws can leave mass unassigned; fold it into the
	// dominant country so shares always sum to 1.
	if remaining > 0 {
		mix[0].Share += remaining
	}
	sort.SliceStable(mix, func(i, j int) bool { return mix[i].Share > mix[j].Share })
	return mix
}

// Lookup returns the domain with the given name.
func (l *List) Lookup(name string) (*Domain, bool) {
	d, ok := l.byName[name]
	return d, ok
}

// Len returns the number of ranked domains.
func (l *List) Len() int { return len(l.Domains) }

// Rank returns the domain at a 1-based rank.
func (l *List) Rank(r int) *Domain {
	if r < 1 || r > len(l.Domains) {
		return nil
	}
	return l.Domains[r-1]
}

// WebInfoService answers customer-country queries the way the paper used
// the Alexa Web Information Service: per domain, with a configurable
// coverage rate (the paper could identify ~75% of subdomains' customer
// country).
type WebInfoService struct {
	list     *List
	coverage float64
	rng      *xrand.Rand
}

// NewWebInfoService wraps list with the given coverage probability.
func NewWebInfoService(list *List, coverage float64, seed int64) *WebInfoService {
	return &WebInfoService{list: list, coverage: coverage, rng: xrand.SplitSeeded(seed, "awis")}
}

// CustomerCountry returns the dominant client country for domain, with
// ok=false for unknown domains or the uncovered fraction.
func (w *WebInfoService) CustomerCountry(domain string) (string, bool) {
	d, found := w.list.Lookup(domain)
	if !found {
		return "", false
	}
	// Coverage is deterministic per domain name, not per call.
	h := uint64(1469598103934665603)
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= 1099511628211
	}
	if float64(h%10000)/10000 > w.coverage {
		return "", false
	}
	return d.CustomerCountry(), true
}
