package cloudscope

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// smallStudy is shared across facade tests.
var smallStudy = NewStudy(Config{Seed: 2, Domains: 1200, Vantages: 25, CaptureFlows: 2500, WANClients: 40})

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Experiments() {
		out := e.Run(smallStudy)
		if len(strings.TrimSpace(out)) == 0 {
			t.Fatalf("experiment %s produced no output", e.ID)
		}
	}
}

func TestRunExperimentByID(t *testing.T) {
	out, err := smallStudy.RunExperiment("table3")
	if err != nil || !strings.Contains(out, "EC2 only") {
		t.Fatalf("table3: %v\n%s", err, out)
	}
	if _, err := smallStudy.RunExperiment("table99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentIDsUniqueAndComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
	for i := 1; i <= 16; i++ {
		id := "table" + itoa(i)
		if !seen[id] {
			t.Fatalf("missing %s", id)
		}
	}
	for i := 3; i <= 12; i++ {
		id := "figure" + itoa(i)
		if !seen[id] {
			t.Fatalf("missing %s", id)
		}
	}
}

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

func TestStudyMemoization(t *testing.T) {
	a := smallStudy.Dataset()
	b := smallStudy.Dataset()
	if a != b {
		t.Fatal("Dataset not memoized")
	}
	if smallStudy.Detection() != smallStudy.Detection() {
		t.Fatal("Detection not memoized")
	}
}

func TestStudyConcurrentAccess(t *testing.T) {
	s := NewStudy(Config{Seed: 5, Domains: 300, Vantages: 10, CaptureFlows: 400, WANClients: 16})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Dataset()
			_ = s.Detection()
			_ = s.Regions()
		}()
	}
	wg.Wait()
}

func TestWriteCapture(t *testing.T) {
	var buf bytes.Buffer
	truth, err := smallStudy.WriteCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if truth.TotalFlows < 2000 {
		t.Fatalf("flows = %d", truth.TotalFlows)
	}
	if buf.Len() < 10000 {
		t.Fatalf("pcap = %d bytes", buf.Len())
	}
	// Valid pcap magic.
	if buf.Bytes()[0] != 0xd4 {
		t.Fatalf("bad magic %x", buf.Bytes()[:4])
	}
}

func TestConfigDefaults(t *testing.T) {
	s := NewStudy(Config{})
	if s.Cfg.Domains != DefaultConfig().Domains || s.Cfg.Seed != DefaultConfig().Seed {
		t.Fatalf("defaults not applied: %+v", s.Cfg)
	}
	c := DefaultConfig().WithDomains(500).WithSeed(9)
	if c.Domains != 500 || c.Seed != 9 {
		t.Fatalf("With helpers broken: %+v", c)
	}
}

func TestRankOf(t *testing.T) {
	if smallStudy.RankOf("amazon.com") != 9 {
		t.Fatalf("amazon.com rank = %d", smallStudy.RankOf("amazon.com"))
	}
	if smallStudy.RankOf("not-a-domain.zz") != 0 {
		t.Fatal("unknown domain should rank 0")
	}
}

func TestFigureSeriesCoverage(t *testing.T) {
	for _, e := range Experiments() {
		series, ok := smallStudy.FigureSeries(e.ID)
		isFigure := strings.HasPrefix(e.ID, "figure")
		if isFigure && !ok {
			t.Fatalf("%s has no series", e.ID)
		}
		if !isFigure && ok {
			t.Fatalf("%s unexpectedly has series", e.ID)
		}
		if ok && len(series) == 0 {
			t.Fatalf("%s series empty", e.ID)
		}
	}
}

func TestWriteSeriesTSV(t *testing.T) {
	series, _ := smallStudy.FigureSeries("figure12")
	var buf bytes.Buffer
	if err := WriteSeriesTSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# latency") || !strings.Contains(out, "# throughput") {
		t.Fatalf("TSV output:\n%s", out)
	}
	// Deterministic ordering: latency block precedes throughput.
	if strings.Index(out, "# latency") > strings.Index(out, "# throughput") {
		t.Fatal("series not sorted")
	}
}
