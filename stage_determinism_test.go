package cloudscope

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"runtime"
	"testing"

	"cloudscope/internal/capture"
	"cloudscope/internal/cartography"
	"cloudscope/internal/core/dataset"
	"cloudscope/internal/core/traffic"
	"cloudscope/internal/deploy"
	"cloudscope/internal/parallel"
	"cloudscope/internal/pcapio"
)

// stageWorkerCounts are the bounds every stage golden is checked at:
// the sequential path, a fixed parallel bound, and whatever the host
// really has.
func stageWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// stageHashes runs each pipeline stage in isolation at the given worker
// bound and returns a content hash per stage. Every stage uses a small
// explicit shard size so shard boundaries cut through real work even on
// small inputs.
func stageHashes(t *testing.T, seed int64, workers int) map[string]string {
	t.Helper()
	opt := parallel.Options{Workers: workers, ShardSize: 19}
	hashes := map[string]string{}
	digest := func(stage string, render func(h *sha256Writer)) {
		h := &sha256Writer{}
		render(h)
		hashes[stage] = h.Sum()
	}

	// Stage 1: world synthesis.
	wcfg := deploy.DefaultConfig().Scaled(400)
	wcfg.Seed = seed
	wcfg.Par = opt
	world := deploy.Generate(wcfg)
	digest("world", func(h *sha256Writer) { world.DumpTruth(h) })

	// Stage 2: subdomain discovery over the world.
	names := make([]string, 0, len(world.Domains))
	for _, d := range world.Domains {
		names = append(names, d.Name)
	}
	ds := dataset.Build(dataset.Config{
		Fabric:   world.Fabric,
		Registry: world.Registry,
		Ranges:   world.Ranges,
		Domains:  names,
		Vantages: 8,
		Workers:  workers,
	})
	digest("dataset", func(h *sha256Writer) {
		if _, err := ds.WriteTo(h); err != nil {
			t.Fatal(err)
		}
	})

	// Stage 3: border capture generation and analysis.
	ccfg := capture.DefaultConfig()
	ccfg.Seed = seed
	ccfg.Flows = 500
	ccfg.Par = opt
	var pcap bytes.Buffer
	g := capture.NewGenerator(ccfg, world)
	if _, err := g.Generate(pcapio.NewWriter(&pcap, ccfg.Snaplen)); err != nil {
		t.Fatal(err)
	}
	digest("capture", func(h *sha256Writer) { h.Write(pcap.Bytes()) })
	an, err := capture.AnalyzePar(&pcap, world.Ranges, opt)
	if err != nil {
		t.Fatal(err)
	}
	digest("capture_analysis", func(h *sha256Writer) {
		fmt.Fprintln(h, traffic.Table1(an))
		fmt.Fprintln(h, traffic.Table2(an))
		fmt.Fprintln(h, traffic.Table5(an, 15))
		fmt.Fprintln(h, traffic.Table6(an, 10))
	})

	// Stage 4: cartography sampling and the proximity-map merge.
	ref := world.EC2.NewAccount("stage-ref")
	samples := cartography.SampleAccounts(world.EC2, ref, 3, 3, cartography.Options{Seed: seed, Par: opt})
	pm := cartography.MergeAccounts(samples, ref.Name, cartography.Options{Par: opt})
	digest("cartography", func(h *sha256Writer) {
		for _, s := range samples {
			fmt.Fprintf(h, "S %s %s %s %s\n", s.Account, s.Region, s.Label, s.InternalIP)
		}
		for _, region := range world.EC2.Regions() {
			fmt.Fprintf(h, "R %s %v %v\n", region, pm.Index(region, 16), pm.Index(region, 24))
		}
		fmt.Fprintf(h, "ref=%s perms=%v\n", pm.Reference, pm.Permutations)
	})
	return hashes
}

// streamChunkSizes are the chunk sizes every streaming golden is
// checked at: degenerate one-domain chunks, a small odd size that cuts
// through every boundary, a size larger than the world (one full
// chunk), and 0 — the explicit whole-world-in-one-chunk spelling.
var streamChunkSizes = []int{1, 7, 1000, 0}

// streamedWorldHash generates the world chunk-by-chunk, hashing each
// chunk's ground-truth dump and releasing it before the next, then
// appends the stream's trailer — the same byte stream DumpTruth writes
// for the in-memory world.
func streamedWorldHash(t *testing.T, seed int64, workers, chunk int) string {
	t.Helper()
	wcfg := deploy.DefaultConfig().Scaled(400)
	wcfg.Seed = seed
	wcfg.Par = parallel.Options{Workers: workers, ShardSize: 19}
	ws := deploy.GenerateStream(wcfg, chunk)
	h := &sha256Writer{}
	for {
		c := ws.Next()
		if c == nil {
			break
		}
		for _, d := range c.Domains {
			d.DumpTo(h)
		}
		ws.Release(c)
	}
	ws.DumpTrailer(h)
	return h.Sum()
}

// streamedDatasetHash runs the spill-to-disk discovery pipeline over a
// chunk-streamed world and hashes the merged text dataset.
func streamedDatasetHash(t *testing.T, seed int64, workers, chunk int) string {
	t.Helper()
	wcfg := deploy.DefaultConfig().Scaled(400)
	wcfg.Seed = seed
	wcfg.Par = parallel.Options{Workers: workers, ShardSize: 19}
	ws := deploy.GenerateStream(wcfg, chunk)
	w := ws.World()
	sb, err := dataset.NewStreamBuilder(dataset.StreamConfig{
		Config: dataset.Config{
			Fabric:   w.Fabric,
			Registry: w.Registry,
			Ranges:   w.Ranges,
			Vantages: 8,
			Workers:  workers,
		},
		Total: wcfg.NumDomains,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	for {
		c := ws.Next()
		if c == nil {
			break
		}
		names := make([]string, len(c.Domains))
		for i, d := range c.Domains {
			names[i] = d.Name
		}
		if err := sb.AddChunk(names); err != nil {
			t.Fatal(err)
		}
		ws.Release(c)
	}
	h := &sha256Writer{}
	if _, err := sb.Finish(h); err != nil {
		t.Fatal(err)
	}
	return h.Sum()
}

// TestStreamingStageDeterminism pins the bounded-memory data path to
// the in-memory goldens: the chunk-streamed world's ground-truth dump
// and the spill-to-disk dataset must hash identically to
// deploy.Generate's DumpTruth and dataset.Build's WriteTo at every
// chunk size × worker bound × seed. This is the oracle that lets the
// 1M-domain streaming run stand in for the in-memory study.
func TestStreamingStageDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the world and discovery stages many times")
	}
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			golden := stageHashes(t, seed, 1)
			for _, workers := range stageWorkerCounts() {
				for _, chunk := range streamChunkSizes {
					if got := streamedWorldHash(t, seed, workers, chunk); got != golden["world"] {
						t.Errorf("streamed world differs from in-memory at Workers=%d chunk=%d seed=%d", workers, chunk, seed)
					}
					if got := streamedDatasetHash(t, seed, workers, chunk); got != golden["dataset"] {
						t.Errorf("streamed dataset differs from in-memory at Workers=%d chunk=%d seed=%d", workers, chunk, seed)
					}
				}
			}
		})
	}
}

// TestStreamingSmallChunkInvariance is the cheap slice of the
// streaming golden that `make check` runs under -race: one seed,
// GOMAXPROCS workers, pathological one-domain chunks against the
// whole-world chunk. Any cross-chunk data race or order dependence in
// the release bookkeeping shows up here.
func TestStreamingSmallChunkInvariance(t *testing.T) {
	const seed = 3
	tiny := streamedDatasetHash(t, seed, 0, 1)
	whole := streamedDatasetHash(t, seed, 0, 0)
	if tiny != whole {
		t.Fatalf("dataset bytes differ between chunk=1 and one-chunk streaming at seed %d", seed)
	}
	if streamedWorldHash(t, seed, 0, 1) != streamedWorldHash(t, seed, 0, 0) {
		t.Fatalf("world dump differs between chunk=1 and one-chunk streaming at seed %d", seed)
	}
}

// sha256Writer hashes everything written through it.
type sha256Writer struct{ data []byte }

func (w *sha256Writer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}
func (w *sha256Writer) Sum() string { return fmt.Sprintf("%x", sha256.Sum256(w.data)) }

// capturePcapHash generates the capture stage's pcap under one
// parallelism layout and returns its content hash.
func capturePcapHash(t *testing.T, world *deploy.World, seed int64, opt parallel.Options) string {
	t.Helper()
	ccfg := capture.DefaultConfig()
	ccfg.Seed = seed
	ccfg.Flows = 500
	ccfg.Par = opt
	var pcap bytes.Buffer
	g := capture.NewGenerator(ccfg, world)
	if _, err := g.Generate(pcapio.NewWriter(&pcap, ccfg.Snaplen)); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(pcap.Bytes()))
}

// TestCapturePcapLayoutDeterminism pins the capture's pcap bytes to be
// identical not just at every worker bound (Workers=1, 4, GOMAXPROCS —
// TestStageDeterminism's axis) but across shard layouts too: per-flow
// random sub-streams and the total event order make the pcap a pure
// function of seed + world, with the worker/shard machinery invisible
// in the output. A layout-dependent draw anywhere in the generator
// shows up here as a hash mismatch.
func TestCapturePcapLayoutDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the capture under many layouts")
	}
	const seed = 3
	wcfg := deploy.DefaultConfig().Scaled(400)
	wcfg.Seed = seed
	world := deploy.Generate(wcfg)
	golden := capturePcapHash(t, world, seed, parallel.Options{Workers: 1})
	for _, workers := range stageWorkerCounts() {
		for _, shard := range []int{0, 1, 19, 128} {
			got := capturePcapHash(t, world, seed, parallel.Options{Workers: workers, ShardSize: shard})
			if got != golden {
				t.Errorf("pcap bytes differ from sequential default layout at Workers=%d ShardSize=%d", workers, shard)
			}
		}
	}
}

// TestStageDeterminism pins each pipeline stage individually — world
// synthesis, discovery, capture generation and analysis, and the
// cartography merge — to be bit-identical at Workers=1, Workers=4, and
// Workers=GOMAXPROCS, at two seeds. The golden is the runtime Workers=1
// run, so the test needs no checked-in fixtures and survives intended
// output changes; what it cannot survive is any worker-count
// dependence.
func TestStageDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every stage several times")
	}
	counts := stageWorkerCounts()
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			golden := stageHashes(t, seed, 1)
			for _, workers := range counts[1:] {
				got := stageHashes(t, seed, workers)
				for stage, want := range golden {
					if got[stage] != want {
						t.Errorf("stage %s differs between Workers=1 and Workers=%d at seed %d", stage, workers, seed)
					}
				}
			}
		})
	}
}
