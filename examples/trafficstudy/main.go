// Trafficstudy: synthesize a week-long border capture, write it as a
// real pcap file, analyze it back with the Bro-style analyzer, and
// print the §3 traffic tables — the paper's packet-capture leg.
package main

import (
	"fmt"
	"os"

	"cloudscope"
	"cloudscope/internal/capture"
	"cloudscope/internal/core/traffic"
	"cloudscope/internal/ipranges"
)

func main() {
	study := cloudscope.NewStudy(cloudscope.Config{Domains: 1500, CaptureFlows: 8000})

	// Write a genuine pcap file (readable by tcpdump/wireshark).
	f, err := os.CreateTemp("", "border-*.pcap")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())
	truth, err := study.WriteCapture(f)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Wrote %s: %d flows, %.1f MB of application traffic.\n\n",
		f.Name(), truth.TotalFlows, float64(truth.TotalBytes)/1e6)
	f.Close()

	// Re-open and analyze, exactly as cmd/traceanalyze would.
	in, err := os.Open(f.Name())
	if err != nil {
		panic(err)
	}
	defer in.Close()
	an, err := capture.Analyze(in, ipranges.Published())
	if err != nil {
		panic(err)
	}
	fmt.Println(traffic.Table1(an))
	fmt.Println(traffic.Table2(an))
	fmt.Println(traffic.Table5(an, 10))

	top := an.TopDomains(ipranges.EC2, 1)
	if len(top) > 0 {
		share := 100 * float64(top[0].Bytes) / float64(an.HTTPTotalBytes())
		fmt.Printf("%s alone carries %.0f%% of HTTP(S) bytes — the paper's dropbox effect.\n",
			top[0].Domain, share)
	}
}
