// Multiregion: plan a multi-region deployment for a web service using
// the §5 machinery — measure client latencies, run the optimal-k
// search, and estimate availability gains from route-outage simulation.
package main

import (
	"fmt"
	"strings"

	"cloudscope"
	"cloudscope/internal/wan"
)

func main() {
	study := cloudscope.NewStudy(cloudscope.Config{Domains: 300, WANClients: 80})
	c := study.Campaign()

	fmt.Println("Optimal k-region deployments (latency):")
	results := c.OptimalK(wan.MetricLatency, 4)
	base := results[0].Value
	for _, r := range results {
		fmt.Printf("  k=%d: %6.1f ms (-%4.1f%%)  %s\n",
			r.K, r.Value, 100*(base-r.Value)/base, strings.Join(r.Regions, ", "))
	}

	// The greedy planner gets within a few percent at a fraction of the
	// search cost — useful when regions number in the dozens.
	greedy := c.GreedyK(wan.MetricLatency, 4)
	fmt.Println("\nGreedy planner for comparison:")
	for i, r := range greedy {
		gap := 100 * (r.Value - results[i].Value) / results[i].Value
		fmt.Printf("  k=%d: %6.1f ms (gap vs optimal: %.1f%%)\n", r.K, r.Value, gap)
	}

	// Availability: fail one downstream ISP per region per trial.
	out := c.Outages(3, 60)
	fmt.Println("\nRoute-outage simulation (fraction of clients cut off):")
	for k := 1; k <= 3; k++ {
		fmt.Printf("  k=%d regions: %.4f\n", k, out.MeanUnreachable[k])
	}
	fmt.Println("\nConclusion: three regions cut mean latency by roughly a third")
	fmt.Println("and make single-ISP outages survivable — §5's argument.")
}
