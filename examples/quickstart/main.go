// Quickstart: generate a small world, run the discovery pipeline, and
// print who is using the cloud — the library's 60-second tour.
package main

import (
	"fmt"

	"cloudscope"
)

func main() {
	// A Study bundles a generated world with every analysis stage;
	// stages run lazily and are memoized.
	study := cloudscope.NewStudy(cloudscope.DefaultConfig().WithDomains(2000))

	ds := study.Dataset()
	fmt.Printf("Scanned %d domains with %d DNS queries.\n",
		ds.Stats.DomainsScanned, ds.Stats.QueriesIssued)
	fmt.Printf("Found %d cloud-using subdomains under %d domains.\n\n",
		ds.Stats.CloudSubdomains, len(ds.CloudDomains()))

	// Table 3: provider breakdown.
	fmt.Println(study.Breakdown().Table3())

	// Deployment-pattern shares (Table 7's core numbers).
	det := study.Detection()
	fmt.Printf("EC2 front ends: VM %d, ELB %d, Heroku %d, unidentified %d\n",
		det.SubCounts["VM"], det.SubCounts["ELB"],
		det.SubCounts["Heroku (no ELB)"], det.SubCounts["Unidentified CNAME"])

	// Region concentration (§4.2's headline).
	reg := study.Regions()
	fmt.Printf("Single-region subdomains: EC2 %.0f%%, Azure %.0f%%\n",
		100*reg.SingleRegionShare("ec2"), 100*reg.SingleRegionShare("azure"))
}
