// Cartography: identify which availability zones unknown EC2 instances
// live in, using both §4.3 techniques directly — the library's
// lowest-level public workflow.
package main

import (
	"fmt"

	"cloudscope/internal/cartography"
	"cloudscope/internal/cloud"
)

func main() {
	ec2 := cloud.NewEC2(42)

	// Someone else's instances, spread across us-east-1's zones.
	var targets []*cloud.Instance
	for i := 0; i < 60; i++ {
		targets = append(targets, ec2.Launch("ec2.us-east-1", i%3, "m1.small", cloud.KindVM))
	}

	// Our measurement account: zone labels are OUR view; EC2 permutes
	// them per account, which is the whole game.
	ref := ec2.NewAccount("measurement")

	// Technique 1: address proximity. Sample instances under several
	// accounts, merge by /16 co-occurrence.
	opt := cartography.Options{Seed: 1}
	samples := cartography.SampleAccounts(ec2, ref, 4, 6, opt)
	pm := cartography.MergeAccounts(samples, ref.Name, opt)

	// Technique 2: latency. Probe instances in each zone ping targets.
	lat := cartography.IdentifyByLatency(ec2, ref, targets, cartography.DefaultLatencyConfig(), opt)

	// Combined estimator.
	comb := cartography.IdentifyCombined(targets, pm, lat)
	fmt.Printf("Identified %d/%d instances (%.0f%% coverage)\n",
		comb.Identified, comb.Total, 100*comb.Coverage())

	correct := 0
	byMethod := map[string]int{}
	for _, t := range targets {
		id := comb.ByIP[t.PublicIP]
		if id.Zone < 0 {
			continue
		}
		byMethod[id.Method]++
		// Ground truth (never visible to the algorithms): translate our
		// account's label back to the provider's true zone.
		if ref.TrueZone(t.Region, string(rune('a'+id.Zone))) == t.ZoneIndex {
			correct++
		}
	}
	fmt.Printf("Accuracy: %d/%d; method mix: %v\n", correct, comb.Identified, byMethod)

	rows := cartography.Veracity(targets, pm, lat)
	for _, r := range rows {
		if r.Region == "all" {
			fmt.Printf("Latency-vs-proximity disagreement: %.1f%%\n", 100*r.ErrorRate())
		}
	}
}
