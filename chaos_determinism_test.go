package cloudscope

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"testing"

	"cloudscope/internal/chaos"
)

// chaosConfig is the fault-injection golden study: telemetry stays ON
// (unlike detConfig) because the Completeness accounting is part of the
// golden — a worker-count-dependent retry or abandonment is exactly the
// kind of bug these goldens exist to catch.
func chaosConfig(seed int64, workers int, sc *chaos.Scenario) Config {
	return Config{
		Seed:         seed,
		Domains:      500,
		Vantages:     10,
		CaptureFlows: 400,
		WANClients:   8,
		Workers:      workers,
		Chaos:        sc,
	}
}

// chaosGolden runs every experiment plus the completeness report and
// returns the per-artifact outputs and a combined sha256.
func chaosGolden(s *Study) (map[string]string, string) {
	out := map[string]string{}
	for _, e := range Experiments() {
		out[e.ID] = e.Run(s)
	}
	out["completeness"] = s.Completeness().Report()
	ids := make([]string, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h := sha256.New()
	for _, id := range ids {
		fmt.Fprintf(h, "%s\n%s\n", id, out[id])
	}
	return out, fmt.Sprintf("%x", h.Sum(nil))
}

// TestChaosDeterminism: a faulted study is as reproducible as a clean
// one. For each (scenario, seed), every experiment output and the full
// Completeness report are byte-identical at Workers=1, Workers=4, and
// Workers=GOMAXPROCS — fault verdicts are pure hash draws over stable
// identities, so scheduling can never change which probes fail.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full studies")
	}
	workerCounts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		workerCounts = append(workerCounts, p)
	}

	cases := []struct {
		scenario string
		seeds    []int64
	}{
		{"hostile", []int64{3, 11}},
		{"planetlab-flux", []int64{3}},
	}
	for _, tc := range cases {
		sc, err := chaos.Load(tc.scenario)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range tc.seeds {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", tc.scenario, seed), func(t *testing.T) {
				golden, goldenSum := chaosGolden(NewStudy(chaosConfig(seed, 1, sc)))

				// A fault plan that degrades nothing golden-tests
				// nothing: the scenario must visibly cost coverage.
				comp := golden["completeness"]
				if comp == "" {
					t.Fatal("no completeness report under chaos")
				}
				s := NewStudy(chaosConfig(seed, 1, sc))
				s.Dataset()
				if !s.Completeness().Degraded() {
					t.Fatalf("scenario %q abandoned nothing in discovery:\n%s", tc.scenario, s.Completeness().Report())
				}

				for _, workers := range workerCounts[1:] {
					got, gotSum := chaosGolden(NewStudy(chaosConfig(seed, workers, sc)))
					if gotSum == goldenSum {
						continue
					}
					for id, want := range golden {
						if got[id] != want {
							t.Errorf("%s differs between Workers=1 and Workers=%d under %q (seed %d):\n--- sequential ---\n%s\n--- parallel ---\n%s",
								id, workers, tc.scenario, seed, want, got[id])
						}
					}
				}
			})
		}
	}
}

// TestChaosChangesOutcomes pins that the fault engine actually reaches
// the pipeline: the same study config with and without a scenario must
// produce different discovery results, and different seeds must fault
// different probes.
func TestChaosChangesOutcomes(t *testing.T) {
	sc, err := chaos.Load("hostile")
	if err != nil {
		t.Fatal(err)
	}
	clean, cleanSum := chaosGolden(NewStudy(chaosConfig(3, 1, nil)))
	_, faultedSum := chaosGolden(NewStudy(chaosConfig(3, 1, sc)))
	if cleanSum == faultedSum {
		t.Fatal("hostile scenario changed nothing")
	}
	if clean["completeness"] != "" && NewStudy(chaosConfig(3, 1, nil)).Completeness().Degraded() {
		t.Fatal("clean study reports degradation")
	}
	_, otherSeed := chaosGolden(NewStudy(chaosConfig(11, 1, sc)))
	if otherSeed == faultedSum {
		t.Fatal("chaos outcomes do not vary with the seed")
	}
}
