package cloudscope

// validation_test enforces the paper's headline claims end-to-end: one
// medium study, every §-level takeaway asserted. EXPERIMENTS.md is the
// human-readable version of this file.

import (
	"testing"

	"cloudscope/internal/capture"
	"cloudscope/internal/core/classify"
	"cloudscope/internal/core/patterns"
	"cloudscope/internal/core/traffic"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/stats"
	"cloudscope/internal/wan"
)

var headlineStudy = NewStudy(Config{Seed: 7, Domains: 3000, Vantages: 40, CaptureFlows: 6000, WANClients: 80})

func TestHeadlineCloudAdoption(t *testing.T) {
	// "4% of the Alexa top million use EC2/Azure."
	w := headlineStudy.World()
	frac := float64(len(w.CloudDomains)) / float64(len(w.Domains))
	if frac < 0.025 || frac > 0.055 {
		t.Fatalf("cloud adoption %.3f, want ~0.04", frac)
	}
	// Discovery recovers most of it with zero false positives.
	ds := headlineStudy.Dataset()
	found := len(ds.CloudDomains())
	if float64(found) < 0.85*float64(len(w.CloudDomains)) {
		t.Fatalf("discovered %d of %d cloud domains", found, len(w.CloudDomains))
	}
}

func TestHeadlineEC2Dominance(t *testing.T) {
	// "94.9% of cloud-using domains use EC2."
	bd := classify.Classify(headlineStudy.Dataset())
	if f := float64(bd.EC2Domains) / float64(bd.TotalDomains); f < 0.85 {
		t.Fatalf("EC2 domain share %.2f", f)
	}
}

func TestHeadlineTrafficShape(t *testing.T) {
	// "~1% of traffic goes to EC2/Azure, majority EC2; HTTPS bytes
	// dominate due to cloud storage."
	_, an := headlineStudy.Capture()
	bytesPct, flowsPct := an.CloudShare()
	if bytesPct[ipranges.EC2] < 70 || flowsPct[ipranges.EC2] < 75 {
		t.Fatalf("EC2 shares: %.1f%% bytes / %.1f%% flows", bytesPct[ipranges.EC2], flowsPct[ipranges.EC2])
	}
	ob, of := an.ProtocolShare("")
	if ob[capture.KindHTTPS] < ob[capture.KindHTTP] {
		t.Fatal("HTTPS should out-carry HTTP in bytes")
	}
	if of[capture.KindHTTP] < of[capture.KindHTTPS] {
		t.Fatal("HTTP should dominate flows")
	}
	// dropbox.com dominates volume.
	top := an.TopDomains(ipranges.EC2, 1)
	if len(top) == 0 || top[0].Domain != "dropbox.com" {
		t.Fatalf("top domain: %+v", top)
	}
}

func TestHeadlineFrontEndMix(t *testing.T) {
	// "~72% VM front ends, 4% ELB, 8% PaaS, mostly Heroku."
	det := headlineStudy.Detection()
	share := func(f patterns.Feature) float64 {
		return stats.Frac(float64(det.SubCounts[f]), float64(det.EC2Subs))
	}
	if s := share("VM"); s < 0.60 || s > 0.82 {
		t.Fatalf("VM share %.2f", s)
	}
	heroku := share("Heroku (no ELB)") + share("Heroku (w/ ELB)")
	if heroku < 0.04 || heroku > 0.14 {
		t.Fatalf("PaaS share %.2f", heroku)
	}
	if det.SubCounts["Heroku (no ELB)"] < det.SubCounts["BeanStalk (w/ ELB)"] {
		t.Fatal("Heroku should dwarf Beanstalk")
	}
}

func TestHeadlineSingleRegion(t *testing.T) {
	// "97% of EC2 and 92% of Azure subdomains use one region."
	reg := headlineStudy.Regions()
	if s := reg.SingleRegionShare(ipranges.EC2); s < 0.93 {
		t.Fatalf("EC2 single-region %.3f", s)
	}
	az := reg.SingleRegionShare(ipranges.Azure)
	ec2 := reg.SingleRegionShare(ipranges.EC2)
	if az > ec2 {
		t.Fatalf("Azure (%.3f) should be less single-region than EC2 (%.3f)", az, ec2)
	}
}

func TestHeadlineZoneUsage(t *testing.T) {
	// "66% of subdomains use more than one zone; only 22% more than two"
	// (library scale shifts mildly; orderings must hold).
	z := headlineStudy.Zones()
	counts := z.ZonesPerSubdomain()
	if len(counts) < 100 {
		t.Skipf("thin zone data: %d", len(counts))
	}
	cdf := stats.NewCDF(counts)
	multi := 1 - cdf.At(1)
	if multi < 0.40 || multi > 0.85 {
		t.Fatalf("multi-zone share %.2f, want ~0.66", multi)
	}
	three := 1 - cdf.At(2)
	if three >= multi {
		t.Fatal("three-zone share must trail multi-zone share")
	}
}

func TestHeadlineOptimalK(t *testing.T) {
	// "Expanding from one region to three could yield 33% lower average
	// latency, with diminishing returns after k=3."
	c := headlineStudy.Campaign()
	res := c.OptimalK(wan.MetricLatency, 4)
	if res[0].Regions[0] != "ec2.us-east-1" {
		t.Fatalf("k=1 best = %v", res[0].Regions)
	}
	drop3 := (res[0].Value - res[2].Value) / res[0].Value
	if drop3 < 0.20 || drop3 > 0.55 {
		t.Fatalf("k=3 improvement %.2f, want ~0.33", drop3)
	}
	drop4 := (res[2].Value - res[3].Value) / res[0].Value
	if drop4 > drop3/2 {
		t.Fatalf("no diminishing returns: k4 marginal %.2f vs k3 total %.2f", drop4, drop3)
	}
}

func TestHeadlineUSEastBlastRadius(t *testing.T) {
	// "An outage of EC2's US East would take down critical components of
	// at least 2.3% of the domains (61% of EC2-using domains)."
	reg := headlineStudy.Regions()
	listShare, cloudShare := reg.HeadlineImpact("ec2.us-east-1", headlineStudy.Cfg.Domains, len(headlineStudy.World().CloudDomains))
	if listShare < 0.01 || listShare > 0.05 {
		t.Fatalf("list share %.3f, want ~0.023", listShare)
	}
	if cloudShare < 0.40 || cloudShare > 0.90 {
		t.Fatalf("cloud share %.2f, want ~0.61", cloudShare)
	}
}

func TestHeadlineCompressionOpportunity(t *testing.T) {
	// "The predominance of plain text and HTML points to compression."
	_, an := headlineStudy.Capture()
	est := traffic.EstimateCompression(an)
	if est.TextShareOfBytes < 0.25 {
		t.Fatalf("text share %.2f, want ~0.5", est.TextShareOfBytes)
	}
	if est.SavedShare < 0.15 {
		t.Fatalf("savings %.2f implausibly low", est.SavedShare)
	}
}

func TestHeadlineISPDiversity(t *testing.T) {
	// "Different zones of a region have almost the same downstream ISPs;
	// diversity varies from >30 to just 4."
	m := wan.New(headlineStudy.Cfg.Seed, 200, ipranges.EC2Regions)
	east0 := m.DownstreamISPs("ec2.us-east-1", 0)
	east1 := m.DownstreamISPs("ec2.us-east-1", 1)
	sa := m.DownstreamISPs("ec2.sa-east-1", 0)
	if len(east0) < 30 || len(sa) != 4 {
		t.Fatalf("pools: east %d, sa %d", len(east0), len(sa))
	}
	shared := 0
	inEast1 := map[int]bool{}
	for _, a := range east1 {
		inEast1[a] = true
	}
	for _, a := range east0 {
		if inEast1[a] {
			shared++
		}
	}
	if shared < len(east0)*9/10 {
		t.Fatalf("zones share only %d/%d ISPs", shared, len(east0))
	}
}
