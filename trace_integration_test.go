package cloudscope

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// studyStageSpans is every span the Study pipeline opens; the trace
// export must cover all of them.
var studyStageSpans = []string{
	"study/world", "study/dataset", "study/detect", "study/classify",
	"study/regions", "study/zones", "study/nameservers", "study/capture",
	"study/wanperf",
}

// TestStudyTraceExport runs the full pipeline and checks the Chrome
// trace_event export: one complete event per stage span, well-formed
// per the trace-event format (ph "X", µs timestamps, pid/tid set), and
// carrying the span's sim-time/allocation/worker-pool args.
func TestStudyTraceExport(t *testing.T) {
	s := NewStudy(Config{Seed: 7, Domains: 300, Vantages: 10, CaptureFlows: 400, WANClients: 16})
	s.World()
	s.Dataset()
	s.Detection()
	s.Breakdown()
	s.Regions()
	s.Zones()
	s.NameServers()
	s.Capture()
	if _, err := s.RunExperiment("figure10"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Telemetry().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string             `json:"name"`
			Ph   string             `json:"ph"`
			TS   float64            `json:"ts"`
			Dur  float64            `json:"dur"`
			PID  int                `json:"pid"`
			TID  int                `json:"tid"`
			Args map[string]float64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		if ev.Ph != "X" {
			t.Errorf("event %s has ph %q, want complete event \"X\"", ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %s has negative ts/dur: %v/%v", ev.Name, ev.TS, ev.Dur)
		}
		if ev.PID != 1 || ev.TID != 1 {
			t.Errorf("event %s pid/tid = %d/%d", ev.Name, ev.PID, ev.TID)
		}
		for _, arg := range []string{"sim_ms", "alloc_bytes", "alloc_objects"} {
			if _, ok := ev.Args[arg]; !ok {
				t.Errorf("event %s missing arg %s", ev.Name, arg)
			}
		}
	}
	for _, name := range append(append([]string{}, studyStageSpans...), "experiment/figure10") {
		if byName[name] == 0 {
			t.Errorf("trace has no event for %s; events: %v", name, byName)
		}
	}

	// The worker pool charges its fan-out shape to the covering stage
	// span, and the stage allocates visibly.
	for _, ev := range doc.TraceEvents {
		if ev.Name != "study/dataset" {
			continue
		}
		if ev.Args["par.runs"] <= 0 || ev.Args["par.workers"] <= 0 {
			t.Errorf("study/dataset missing worker-pool stats: %v", ev.Args)
		}
		if ev.Args["alloc_bytes"] <= 0 {
			t.Errorf("study/dataset alloc_bytes = %v, want > 0", ev.Args["alloc_bytes"])
		}
		if ev.Args["sim_ms"] <= 0 {
			t.Errorf("study/dataset sim_ms = %v, want > 0", ev.Args["sim_ms"])
		}
	}

	// The flame summary aggregates the same tree.
	flame := s.Telemetry().Flame()
	for _, frag := range []string{"study/dataset", "total", "self", "alloc"} {
		if !strings.Contains(flame, frag) {
			t.Errorf("flame summary missing %q:\n%s", frag, flame)
		}
	}
}

// TestTraceExportNilAndEmpty pins the degenerate outputs: a nil
// telemetry handle and a span-less tracer both emit a valid, empty
// trace document.
func TestTraceExportNilAndEmpty(t *testing.T) {
	var nilTel = NewStudy(Config{Domains: 300, NoTelemetry: true}).Telemetry()
	var buf bytes.Buffer
	if err := nilTel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-telemetry trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil telemetry produced %d events", len(doc.TraceEvents))
	}
	if doc.TraceEvents == nil {
		t.Fatal("traceEvents must be [] (not null) for chrome://tracing")
	}
}
