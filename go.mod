module cloudscope

go 1.22
