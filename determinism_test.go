package cloudscope

import (
	"fmt"
	"runtime"
	"testing"
)

// detConfig is the golden-test study: small enough that a full
// experiment sweep per (seed, worker-count) stays cheap, large enough
// that every stage has real work to shard.
func detConfig(seed int64, workers int) Config {
	return Config{
		Seed:         seed,
		Domains:      700,
		Vantages:     12,
		CaptureFlows: 600,
		WANClients:   10,
		Workers:      workers,
		NoTelemetry:  true,
	}
}

// TestParallelDeterminism is the harness behind the parallel pipeline's
// central promise: every Table/Figure experiment produces byte-identical
// output at Workers=1 (the sequential path), Workers=4, and
// Workers=GOMAXPROCS, at two different seeds. Any scheduling
// dependence — a shared rng, a map-order merge, a shard layout that
// consults the worker count — breaks these goldens immediately.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full studies")
	}
	workerCounts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		workerCounts = append(workerCounts, p)
	}
	exps := Experiments()

	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			// Golden: the sequential path.
			golden := map[string]string{}
			seq := NewStudy(detConfig(seed, 1))
			for _, e := range exps {
				golden[e.ID] = e.Run(seq)
			}

			for _, workers := range workerCounts[1:] {
				s := NewStudy(detConfig(seed, workers))
				for _, e := range exps {
					e := e
					t.Run(fmt.Sprintf("%s/workers%d", e.ID, workers), func(t *testing.T) {
						got := e.Run(s)
						if got != golden[e.ID] {
							t.Errorf("%s differs between Workers=1 and Workers=%d at seed %d:\n--- sequential ---\n%s\n--- parallel ---\n%s",
								e.ID, workers, seed, golden[e.ID], got)
						}
					})
				}
			}
		})
	}
}

// TestWorkersConfigThreading checks the knob reaches the stages: a
// telemetry-on study run with an explicit worker bound must report it
// through every stage's parallel gauges.
func TestWorkersConfigThreading(t *testing.T) {
	s := NewStudy(Config{Seed: 5, Domains: 400, Vantages: 8, CaptureFlows: 400, WANClients: 8, Workers: 3})
	s.Detection()
	s.Regions()
	s.Zones()
	s.NameServers()
	s.Capture()
	for _, id := range []string{"figure10", "table11", "table16"} {
		if _, err := s.RunExperiment(id); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Telemetry().Registry().Snapshot()
	for _, stage := range []string{
		"world", "dataset", "detect", "regions", "zones", "nameservers",
		"capture", "capture_analyze", "wanperf", "rtt", "isp",
	} {
		shards := snap.Gauge("parallel." + stage + ".shards")
		if shards == 0 {
			t.Errorf("stage %s reported no shards", stage)
		}
		got := snap.Gauge("parallel." + stage + ".workers")
		want := int64(3)
		if shards < want {
			want = shards // pools never run more workers than shards
		}
		if got != want {
			t.Errorf("parallel.%s.workers = %d, want %d", stage, got, want)
		}
	}
}
