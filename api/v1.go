// Package api defines cloudscope's versioned wire format: the V1 DTO
// types every external surface emits — the cloudscoped daemon's
// /v1/* endpoints and cmd/experiments -json both serialize these
// structs, so the wire schema lives in exactly one place and is
// golden-pinned by this package's tests.
//
// Every builder takes a context and the Study it answers from; stage
// compute aborts via the Study's *Context accessors when the request
// is cancelled. All slices are deterministically ordered and no DTO
// contains a map, so same-seed studies marshal byte-identically.
package api

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"cloudscope"
	"cloudscope/internal/core/classify"
	"cloudscope/internal/core/patterns"
	"cloudscope/internal/core/wanperf"
	"cloudscope/internal/core/zones"
	"cloudscope/internal/ipranges"
	"cloudscope/internal/wan"
)

// Version is the wire-format version tag carried by every Envelope.
const Version = "v1"

// USRegions are the paper's Figure 9/10 region restriction; WANPerf
// matrices and per-domain latency estimates use it.
var USRegions = []string{"ec2.us-east-1", "ec2.us-west-1", "ec2.us-west-2"}

// Envelope wraps every response: which endpoint answered, from which
// world epoch and config, and — when the study ran under chaos — how
// complete the answer is. Data holds the endpoint's V1 payload.
type Envelope struct {
	APIVersion string `json:"api_version"`
	Endpoint   string `json:"endpoint"`
	// Epoch identifies the world generation the answer came from; the
	// daemon bumps it on /admin/reload. Library callers (experiments
	// -json) report epoch 0.
	Epoch    int64  `json:"epoch"`
	Seed     int64  `json:"seed"`
	Domains  int    `json:"domains"`
	Workers  int    `json:"workers,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	// Degraded is true when any relevant stage abandoned probes; the
	// Completeness fractions then say how much survived.
	Degraded     bool      `json:"degraded"`
	Completeness []StageV1 `json:"completeness,omitempty"`
	Data         any       `json:"data"`
}

// StageV1 is one pipeline stage's probe accounting.
type StageV1 struct {
	Stage       string  `json:"stage"`
	Attempted   int64   `json:"attempted"`
	Succeeded   int64   `json:"succeeded"`
	Retried     int64   `json:"retried"`
	Abandoned   int64   `json:"abandoned"`
	SuccessRate float64 `json:"success_rate"`
}

// PatternsV1 answers /v1/patterns: Table 7's feature usage plus
// Table 3's provider breakdown.
type PatternsV1 struct {
	Features          []FeatureV1  `json:"features"`
	EC2Subdomains     int          `json:"ec2_subdomains"`
	AzureSubdomains   int          `json:"azure_subdomains"`
	SharedELBPhysical int          `json:"shared_elb_physical"`
	SharedELBBy10Plus int          `json:"shared_elb_by_10_plus"`
	Breakdown         *BreakdownV1 `json:"breakdown"`
}

// FeatureV1 is one Table 7 row.
type FeatureV1 struct {
	Cloud      string `json:"cloud"`
	Feature    string `json:"feature"`
	Domains    int    `json:"domains"`
	Subdomains int    `json:"subdomains"`
	Instances  int    `json:"instances"`
	// SubdomainShare is the feature's fraction of its cloud's subdomains.
	SubdomainShare float64 `json:"subdomain_share"`
}

// BreakdownV1 is Table 3: how domains and subdomains split across
// providers.
type BreakdownV1 struct {
	Categories      []CategoryV1 `json:"categories"`
	TotalDomains    int          `json:"total_domains"`
	TotalSubdomains int          `json:"total_subdomains"`
	EC2Domains      int          `json:"ec2_domains"`
	AzureDomains    int          `json:"azure_domains"`
	EC2Subdomains   int          `json:"ec2_subdomains"`
	AzureSubdomains int          `json:"azure_subdomains"`
}

// CategoryV1 is one Table 3 row.
type CategoryV1 struct {
	Category   string `json:"category"`
	Domains    int    `json:"domains"`
	Subdomains int    `json:"subdomains"`
}

// RegionsV1 answers /v1/regions: Table 9's per-region usage.
type RegionsV1 struct {
	Regions []RegionV1 `json:"regions"`
	// SingleRegionShare is the fraction of each provider's subdomains
	// confined to one region (the paper's ~97%).
	SingleRegionShareEC2   float64 `json:"single_region_share_ec2"`
	SingleRegionShareAzure float64 `json:"single_region_share_azure"`
}

// RegionV1 is one region's usage counts.
type RegionV1 struct {
	Region     string `json:"region"`
	Domains    int    `json:"domains"`
	Subdomains int    `json:"subdomains"`
}

// ZonesV1 answers /v1/zones: §4.3's availability-zone cartography.
type ZonesV1 struct {
	// Coverage is the fraction of targeted EC2 instances whose zone was
	// identified.
	Coverage float64  `json:"coverage"`
	Zones    []ZoneV1 `json:"zones"`
	// MultiRegionZoneShare: among subdomains on 2+ zones, the fraction
	// spanning regions (the paper's 3.1%).
	MultiRegionZoneShare float64 `json:"multi_region_zone_share"`
}

// ZoneV1 is one zone's usage counts; Zone is "ec2.us-east-1a" style.
type ZoneV1 struct {
	Zone       string `json:"zone"`
	Domains    int    `json:"domains"`
	Subdomains int    `json:"subdomains"`
}

// DomainV1 answers /v1/domain?name=: everything the study knows about
// one ranked domain.
type DomainV1 struct {
	Domain string `json:"domain"`
	// Rank is the domain's position in the ranked list (0 = unranked).
	Rank  int  `json:"rank"`
	Found bool `json:"found"`
	// Discovery summary (zero-valued when the domain used no cloud).
	AXFRWorked     bool          `json:"axfr_worked"`
	SubdomainsSeen int           `json:"subdomains_seen"`
	CloudUsing     int           `json:"cloud_using"`
	Subdomains     []DomainSubV1 `json:"subdomains,omitempty"`
	// LatencyEstimates are per-region mean RTTs from the WAN campaign's
	// vantages, restricted to the EC2 regions this domain deploys in.
	LatencyEstimates []LatencyV1 `json:"latency_estimates,omitempty"`
}

// DomainSubV1 is one cloud-using subdomain's identification.
type DomainSubV1 struct {
	FQDN     string   `json:"fqdn"`
	Provider string   `json:"provider,omitempty"`
	Feature  string   `json:"feature"`
	IPs      int      `json:"ips"`
	Regions  []string `json:"regions,omitempty"`
	Zones    []string `json:"zones,omitempty"`
}

// LatencyV1 is one region's mean RTT estimate across WAN vantages.
type LatencyV1 struct {
	Region    string  `json:"region"`
	MeanRTTMs float64 `json:"mean_rtt_ms"`
	Clients   int     `json:"clients"`
}

// WANPerfV1 answers /v1/wanperf: §5's client×region performance
// matrices (US regions, first 15 clients — the paper's figures) and
// the optimal-k region subsets.
type WANPerfV1 struct {
	LatencyMatrix    []MatrixCellV1 `json:"latency_matrix"`
	ThroughputMatrix []MatrixCellV1 `json:"throughput_matrix"`
	OptimalK         []OptimalKV1   `json:"optimal_k"`
}

// MatrixCellV1 is one (client, region) mean.
type MatrixCellV1 struct {
	Client  string  `json:"client"`
	Region  string  `json:"region"`
	Mean    float64 `json:"mean"`
	Samples int     `json:"samples"`
}

// OptimalKV1 is one k's best region subset.
type OptimalKV1 struct {
	K       int      `json:"k"`
	Regions []string `json:"regions"`
	Value   float64  `json:"value"`
}

// OutageV1 answers /v1/outage: the §4.2/§4.3 what-if blast radii.
// With a region parameter, Headline carries that region's summary.
type OutageV1 struct {
	Regions  []RegionOutageV1 `json:"regions"`
	Zones    []ZoneOutageV1   `json:"zones"`
	Headline *HeadlineV1      `json:"headline,omitempty"`
}

// RegionOutageV1 is one region's blast radius.
type RegionOutageV1 struct {
	Region             string `json:"region"`
	SubdomainsDown     int    `json:"subdomains_down"`
	SubdomainsDegraded int    `json:"subdomains_degraded"`
	DomainsHit         int    `json:"domains_hit"`
}

// ZoneOutageV1 is one zone's blast radius.
type ZoneOutageV1 struct {
	Zone               string `json:"zone"`
	SubdomainsDown     int    `json:"subdomains_down"`
	SubdomainsDegraded int    `json:"subdomains_degraded"`
	DomainsDown        int    `json:"domains_down"`
}

// HeadlineV1 is one region's outage summary (the paper's "2.3% of the
// top million" numbers) plus its zone-usage skew.
type HeadlineV1 struct {
	Region     string  `json:"region"`
	ListShare  float64 `json:"list_share"`
	CloudShare float64 `json:"cloud_share"`
	SkewRatio  float64 `json:"skew_ratio"`
}

// CompletenessV1 answers /v1/completeness: every stage's accounting.
type CompletenessV1 struct {
	Degraded bool      `json:"degraded"`
	Stages   []StageV1 `json:"stages"`
}

// StudyV1 bundles every section for cmd/experiments -json.
type StudyV1 struct {
	Patterns     *PatternsV1     `json:"patterns"`
	Regions      *RegionsV1      `json:"regions"`
	Zones        *ZonesV1        `json:"zones"`
	WANPerf      *WANPerfV1      `json:"wanperf"`
	Outage       *OutageV1       `json:"outage"`
	Completeness *CompletenessV1 `json:"completeness"`
}

// StagesFor maps an endpoint name to the Completeness stage prefixes
// its answer depends on; nil means every stage. The daemon and
// NewEnvelope use it to attach only the relevant fractions.
func StagesFor(endpoint string) []string {
	switch endpoint {
	case "patterns", "regions":
		return []string{"dataset"}
	case "zones", "domain", "outage":
		return []string{"dataset", "cartography"}
	case "wanperf":
		return []string{"wanperf"}
	}
	return nil
}

// CompletenessStages snapshots the study's completeness, keeping only
// stages under one of the given prefixes (nil keeps all). Stage "x"
// matches prefix "x" and "x/y" matches prefix "x".
func CompletenessStages(s *cloudscope.Study, prefixes []string) []StageV1 {
	var out []StageV1
	for _, sc := range s.Completeness().Snapshot() {
		if !stageMatches(sc.Stage, prefixes) {
			continue
		}
		out = append(out, StageV1{
			Stage:       sc.Stage,
			Attempted:   sc.Attempted,
			Succeeded:   sc.Succeeded,
			Retried:     sc.Retried,
			Abandoned:   sc.Abandoned,
			SuccessRate: sc.SuccessRate(),
		})
	}
	return out
}

func stageMatches(stage string, prefixes []string) bool {
	if prefixes == nil {
		return true
	}
	for _, p := range prefixes {
		if stage == p || strings.HasPrefix(stage, p+"/") {
			return true
		}
	}
	return false
}

// NewEnvelope wraps an endpoint's payload with the study's identity
// and the endpoint-relevant completeness fractions.
func NewEnvelope(endpoint string, epoch int64, s *cloudscope.Study, data any) *Envelope {
	env := &Envelope{
		APIVersion: Version,
		Endpoint:   endpoint,
		Epoch:      epoch,
		Seed:       s.Cfg.Seed,
		Domains:    s.Cfg.Domains,
		Workers:    s.Cfg.Workers,
		Data:       data,
	}
	if s.Cfg.Chaos != nil {
		env.Scenario = s.Cfg.Chaos.Name
	}
	if c := s.Completeness(); c != nil && c.Degraded() {
		env.Degraded = true
	}
	env.Completeness = CompletenessStages(s, StagesFor(endpoint))
	return env
}

// Patterns builds the /v1/patterns payload.
func Patterns(ctx context.Context, s *cloudscope.Study) (*PatternsV1, error) {
	det, err := s.DetectionContext(ctx)
	if err != nil {
		return nil, err
	}
	bd, err := s.BreakdownContext(ctx)
	if err != nil {
		return nil, err
	}
	out := &PatternsV1{
		EC2Subdomains:   det.EC2Subs,
		AzureSubdomains: det.AzureSubs,
	}
	out.SharedELBPhysical, out.SharedELBBy10Plus = det.SharedELBStats()
	row := func(cloud string, f patterns.Feature, denom int) {
		var share float64
		if denom > 0 {
			share = float64(det.SubCounts[f]) / float64(denom)
		}
		out.Features = append(out.Features, FeatureV1{
			Cloud:          cloud,
			Feature:        string(f),
			Domains:        det.DomCounts[f],
			Subdomains:     det.SubCounts[f],
			Instances:      det.InstCounts[f],
			SubdomainShare: share,
		})
	}
	for _, f := range []patterns.Feature{
		patterns.FeatureVM, patterns.FeatureELB, patterns.FeatureBeanstalk,
		patterns.FeatureHerokuELB, patterns.FeatureHeroku,
		patterns.FeatureCloudFront, patterns.FeatureUnknownCNAME,
	} {
		row("EC2", f, det.EC2Subs)
	}
	for _, f := range []patterns.Feature{patterns.FeatureCS, patterns.FeatureTM, patterns.FeatureAzureCDN} {
		row("Azure", f, det.AzureSubs)
	}
	bv := &BreakdownV1{
		TotalDomains:    bd.TotalDomains,
		TotalSubdomains: bd.TotalSubdomains,
		EC2Domains:      bd.EC2Domains,
		AzureDomains:    bd.AzureDomains,
		EC2Subdomains:   bd.EC2Subdomains,
		AzureSubdomains: bd.AzureSubdomains,
	}
	for c := 0; c < len(bd.Domains); c++ {
		bv.Categories = append(bv.Categories, CategoryV1{
			Category:   classify.Category(c).String(),
			Domains:    bd.Domains[c],
			Subdomains: bd.Subdomains[c],
		})
	}
	out.Breakdown = bv
	return out, nil
}

// Regions builds the /v1/regions payload.
func Regions(ctx context.Context, s *cloudscope.Study) (*RegionsV1, error) {
	reg, err := s.RegionsContext(ctx)
	if err != nil {
		return nil, err
	}
	out := &RegionsV1{
		SingleRegionShareEC2:   reg.SingleRegionShare(ipranges.EC2),
		SingleRegionShareAzure: reg.SingleRegionShare(ipranges.Azure),
	}
	for _, r := range append(append([]string{}, ipranges.EC2Regions...), ipranges.AzureRegions...) {
		if reg.RegionSubs[r] == 0 && reg.RegionDoms[r] == 0 {
			continue
		}
		out.Regions = append(out.Regions, RegionV1{
			Region:     r,
			Domains:    reg.RegionDoms[r],
			Subdomains: reg.RegionSubs[r],
		})
	}
	return out, nil
}

// zoneLabel renders a ZoneKey as "ec2.us-east-1a".
func zoneLabel(k zones.ZoneKey) string {
	return fmt.Sprintf("%s%c", k.Region, 'a'+k.Zone)
}

// Zones builds the /v1/zones payload.
func Zones(ctx context.Context, s *cloudscope.Study) (*ZonesV1, error) {
	z, err := s.ZonesContext(ctx)
	if err != nil {
		return nil, err
	}
	out := &ZonesV1{
		Coverage:             z.Combined.Coverage(),
		MultiRegionZoneShare: z.MultiRegionZoneShare(),
	}
	subCounts, domCounts := z.ZoneUsage()
	keys := make([]zones.ZoneKey, 0, len(subCounts))
	for k := range subCounts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Region != keys[j].Region {
			return keys[i].Region < keys[j].Region
		}
		return keys[i].Zone < keys[j].Zone
	})
	for _, k := range keys {
		out.Zones = append(out.Zones, ZoneV1{
			Zone:       zoneLabel(k),
			Domains:    domCounts[k],
			Subdomains: subCounts[k],
		})
	}
	return out, nil
}

// Domain builds the /v1/domain payload for one ranked domain.
func Domain(ctx context.Context, s *cloudscope.Study, name string) (*DomainV1, error) {
	ds, err := s.DatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	out := &DomainV1{Domain: name, Rank: s.RankOf(name)}
	obs := ds.ByDomain[name]
	if sum := ds.Domains[name]; sum != nil {
		out.Found = true
		out.AXFRWorked = sum.AXFRWorked
		out.SubdomainsSeen = sum.SubdomainsSeen
		out.CloudUsing = sum.CloudUsing
	}
	if out.Rank > 0 {
		out.Found = true
	}
	if len(obs) == 0 {
		return out, nil
	}

	det, err := s.DetectionContext(ctx)
	if err != nil {
		return nil, err
	}
	reg, err := s.RegionsContext(ctx)
	if err != nil {
		return nil, err
	}
	z, err := s.ZonesContext(ctx)
	if err != nil {
		return nil, err
	}
	subRegions := map[string][]string{}
	for _, sr := range reg.Subdomains {
		if sr.Domain == name {
			subRegions[sr.FQDN] = sr.Regions
		}
	}

	fqdns := make([]string, 0, len(obs))
	for _, o := range obs {
		fqdns = append(fqdns, o.FQDN)
	}
	sort.Strings(fqdns)
	ec2Regions := map[string]bool{}
	for _, fqdn := range fqdns {
		sub := DomainSubV1{FQDN: fqdn}
		if c := det.Classes[fqdn]; c != nil {
			sub.Provider = string(c.Provider)
			sub.Feature = string(c.Primary)
		}
		if o := ds.Subdomains[fqdn]; o != nil {
			sub.IPs = len(o.IPs)
		}
		sub.Regions = subRegions[fqdn]
		for _, r := range sub.Regions {
			if strings.HasPrefix(r, "ec2.") {
				ec2Regions[r] = true
			}
		}
		for _, k := range z.SubZones[fqdn] {
			sub.Zones = append(sub.Zones, zoneLabel(k))
		}
		sort.Strings(sub.Zones)
		out.Subdomains = append(out.Subdomains, sub)
	}

	// Latency estimates: mean RTT per deployed EC2 region across the
	// campaign's first 15 vantages (the paper's figure subset).
	if len(ec2Regions) > 0 {
		camp, err := s.CampaignContext(ctx)
		if err != nil {
			return nil, err
		}
		var regionList []string
		for _, r := range ipranges.EC2Regions { // stable paper order
			if ec2Regions[r] {
				regionList = append(regionList, r)
			}
		}
		cells, err := matrixCtx(ctx, func() []MatrixCellV1 {
			return toCells(camp.Matrix(wan.MetricLatency, regionList, 15))
		})
		if err != nil {
			return nil, err
		}
		sum := map[string]float64{}
		n := map[string]int{}
		for _, c := range cells {
			sum[c.Region] += c.Mean
			n[c.Region]++
		}
		for _, r := range regionList {
			if n[r] == 0 {
				continue
			}
			out.LatencyEstimates = append(out.LatencyEstimates, LatencyV1{
				Region:    r,
				MeanRTTMs: sum[r] / float64(n[r]),
				Clients:   n[r],
			})
		}
	}
	return out, nil
}

// WANPerf builds the /v1/wanperf payload.
func WANPerf(ctx context.Context, s *cloudscope.Study) (*WANPerfV1, error) {
	camp, err := s.CampaignContext(ctx)
	if err != nil {
		return nil, err
	}
	out := &WANPerfV1{}
	out.LatencyMatrix, err = matrixCtx(ctx, func() []MatrixCellV1 {
		return toCells(camp.Matrix(wan.MetricLatency, USRegions, 15))
	})
	if err != nil {
		return nil, err
	}
	out.ThroughputMatrix, err = matrixCtx(ctx, func() []MatrixCellV1 {
		return toCells(camp.Matrix(wan.MetricThroughput, USRegions, 15))
	})
	if err != nil {
		return nil, err
	}
	best, err := matrixCtx(ctx, func() []OptimalKV1 {
		var ks []OptimalKV1
		for _, r := range camp.OptimalK(wan.MetricLatency, 3) {
			ks = append(ks, OptimalKV1{K: r.K, Regions: r.Regions, Value: r.Value})
		}
		return ks
	})
	if err != nil {
		return nil, err
	}
	out.OptimalK = best
	return out, nil
}

// matrixCtx runs a campaign computation whose cancellation surfaces as
// a panic (the stages re-raise worker errors), converting it back to
// an error return.
func matrixCtx[T any](_ context.Context, fn func() T) (out T, err error) {
	defer func() {
		if v := recover(); v != nil {
			if e, ok := v.(error); ok && (errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded)) {
				err = e
				return
			}
			panic(v)
		}
	}()
	return fn(), nil
}

func toCells(cells []wanperf.MatrixCell) []MatrixCellV1 {
	out := make([]MatrixCellV1, 0, len(cells))
	for _, c := range cells {
		out = append(out, MatrixCellV1{Client: c.Client, Region: c.Region, Mean: c.Mean, Samples: c.Samples})
	}
	return out
}

// Outage builds the /v1/outage payload; region "" skips the headline.
func Outage(ctx context.Context, s *cloudscope.Study, region string) (*OutageV1, error) {
	reg, err := s.RegionsContext(ctx)
	if err != nil {
		return nil, err
	}
	z, err := s.ZonesContext(ctx)
	if err != nil {
		return nil, err
	}
	ds, err := s.DatasetContext(ctx)
	if err != nil {
		return nil, err
	}
	out := &OutageV1{}
	for _, imp := range reg.RegionOutages() {
		out.Regions = append(out.Regions, RegionOutageV1{
			Region:             imp.Region,
			SubdomainsDown:     imp.SubdomainsDown,
			SubdomainsDegraded: imp.SubdomainsDegraded,
			DomainsHit:         imp.DomainsHit,
		})
	}
	for _, imp := range z.ZoneOutages() {
		out.Zones = append(out.Zones, ZoneOutageV1{
			Zone:               zoneLabel(imp.Zone),
			SubdomainsDown:     imp.SubdomainsDown,
			SubdomainsDegraded: imp.SubdomainsDegraded,
			DomainsDown:        imp.DomainsDown,
		})
	}
	if region != "" {
		listShare, cloudShare := reg.HeadlineImpact(region, s.Cfg.Domains, len(ds.CloudDomains()))
		out.Headline = &HeadlineV1{
			Region:     region,
			ListShare:  listShare,
			CloudShare: cloudShare,
			SkewRatio:  z.SkewRatio(region),
		}
	}
	return out, nil
}

// CompletenessReport builds the /v1/completeness payload: every
// stage's fractions, unfiltered.
func CompletenessReport(s *cloudscope.Study) *CompletenessV1 {
	return &CompletenessV1{
		Degraded: s.Completeness().Degraded(),
		Stages:   CompletenessStages(s, nil),
	}
}

// Study builds every section at once — cmd/experiments -json emits
// this, so batch and served output share one schema.
func Study(ctx context.Context, s *cloudscope.Study) (*StudyV1, error) {
	pat, err := Patterns(ctx, s)
	if err != nil {
		return nil, err
	}
	reg, err := Regions(ctx, s)
	if err != nil {
		return nil, err
	}
	z, err := Zones(ctx, s)
	if err != nil {
		return nil, err
	}
	wp, err := WANPerf(ctx, s)
	if err != nil {
		return nil, err
	}
	og, err := Outage(ctx, s, "ec2.us-east-1")
	if err != nil {
		return nil, err
	}
	return &StudyV1{
		Patterns:     pat,
		Regions:      reg,
		Zones:        z,
		WANPerf:      wp,
		Outage:       og,
		Completeness: CompletenessReport(s),
	}, nil
}
