package api

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cloudscope"
	"cloudscope/internal/chaos"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testConfig() cloudscope.Config {
	cfg := cloudscope.DefaultConfig()
	cfg.Domains = 300
	cfg.Vantages = 8
	cfg.CaptureFlows = 500
	cfg.Workers = 1
	return cfg
}

// marshal renders a StudyV1 exactly as the daemon and experiments
// -json do.
func marshalStudy(t *testing.T, s *cloudscope.Study) []byte {
	t.Helper()
	v, err := Study(context.Background(), s)
	if err != nil {
		t.Fatalf("Study: %v", err)
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return append(b, '\n')
}

// TestStudyV1Golden pins the whole V1 wire format: any schema or
// value change shows up as a golden diff. Regenerate with -update.
func TestStudyV1Golden(t *testing.T) {
	got := marshalStudy(t, cloudscope.NewStudy(testConfig()))
	path := filepath.Join("testdata", "study_v1.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("V1 JSON diverged from golden %s (rerun with -update if intended); got %d bytes want %d", path, len(got), len(want))
	}
}

// TestStudyV1WorkerInvariant proves the wire bytes are independent of
// the fan-out: Workers=1 and Workers=3 marshal byte-identically
// (modulo the workers field itself, which we pin equal here by
// comparing payloads, not envelopes).
func TestStudyV1WorkerInvariant(t *testing.T) {
	seq := marshalStudy(t, cloudscope.NewStudy(testConfig()))
	cfg := testConfig()
	cfg.Workers = 3
	par := marshalStudy(t, cloudscope.NewStudy(cfg))
	if string(seq) != string(par) {
		t.Fatal("V1 JSON differs between Workers=1 and Workers=3")
	}
}

// TestEnvelopeDegraded checks the degraded-but-honest contract: a
// chaos-scenario study's envelope flags Degraded and carries
// success fractions below 1 for the affected stages.
func TestEnvelopeDegraded(t *testing.T) {
	sc, err := chaos.Load("hostile")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Seed = 3
	cfg.Domains = 500
	cfg.Vantages = 10
	cfg.Chaos = sc
	s := cloudscope.NewStudy(cfg)
	if _, err := Patterns(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	env := NewEnvelope("patterns", 1, s, nil)
	if env.APIVersion != Version || env.Endpoint != "patterns" || env.Epoch != 1 {
		t.Fatalf("envelope identity wrong: %+v", env)
	}
	if env.Scenario != "hostile" {
		t.Fatalf("scenario = %q", env.Scenario)
	}
	if !env.Degraded {
		t.Fatal("chaos study not flagged degraded")
	}
	found := false
	for _, st := range env.Completeness {
		if st.SuccessRate < 1 {
			found = true
		}
		if st.SuccessRate > 1 || st.SuccessRate < 0 {
			t.Fatalf("stage %s success rate %v out of range", st.Stage, st.SuccessRate)
		}
	}
	if !found {
		t.Fatal("no stage reported a success fraction below 1 under hostile chaos")
	}
}

// TestStagesFor pins the endpoint → stage-prefix map.
func TestStagesFor(t *testing.T) {
	if got := StagesFor("patterns"); len(got) != 1 || got[0] != "dataset" {
		t.Fatalf("patterns stages = %v", got)
	}
	if got := StagesFor("completeness"); got != nil {
		t.Fatalf("completeness stages = %v, want nil (all)", got)
	}
}

// TestDomainEndpoint sanity-checks the per-domain answer against the
// raw study.
func TestDomainEndpoint(t *testing.T) {
	s := cloudscope.NewStudy(testConfig())
	ds := s.Dataset()
	cloudDomains := ds.CloudDomains()
	if len(cloudDomains) == 0 {
		t.Skip("no cloud-using domains at this size")
	}
	name := cloudDomains[0]
	d, err := Domain(context.Background(), s, name)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Found {
		t.Fatalf("domain %s not found", name)
	}
	if len(d.Subdomains) != len(ds.ByDomain[name]) {
		t.Fatalf("subdomain count %d != dataset %d", len(d.Subdomains), len(ds.ByDomain[name]))
	}
	if d.Rank != s.RankOf(name) {
		t.Fatalf("rank %d != %d", d.Rank, s.RankOf(name))
	}
	// A domain absent from the world answers found=false, not an error.
	missing, err := Domain(context.Background(), s, "no-such-domain.example")
	if err != nil {
		t.Fatal(err)
	}
	if missing.Found {
		t.Fatal("missing domain reported found")
	}
}

// TestContextCancelled proves builders abort instead of computing.
func TestContextCancelled(t *testing.T) {
	s := cloudscope.NewStudy(testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Patterns(ctx, s); err == nil {
		t.Fatal("cancelled Patterns returned nil error")
	}
	// The study retries cleanly afterwards.
	if _, err := Patterns(context.Background(), s); err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
}
