# cloudscope — reproduction of He et al., IMC 2013.

GO ?= go

.PHONY: all build check test race bench bench-smoke bench-snapshot serve-smoke experiments world chaos bisect-smoke fuzz-chaos fuzz-chaos-v3 fuzz-trace fuzz-packet fuzz-pcap fuzz-diskfmt clean

all: build check test

build:
	$(GO) build ./...

# Static analysis plus race-detector runs over the packages with the
# hottest concurrent paths (telemetry instruments, fabric, resolver,
# the worker pool, and every parallelized analysis stage), plus a
# repeated small-shard stress run that forces shard-boundary
# interleavings in the pool.
check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@if grep -rn --include='*.go' '"unsafe"' . ; then \
		echo 'the zero-copy hot path stays honest: no unsafe imports'; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race ./internal/telemetry ./internal/simnet ./internal/dnssrv \
		./internal/parallel ./internal/core/patterns ./internal/core/regions \
		./internal/core/zones ./internal/core/wanperf ./internal/cartography \
		./internal/wan
	$(GO) test -race -count=5 -run TestStressShardBoundaries ./internal/parallel
	$(GO) test -race -count=5 -run 'WorkerCountInvariant|ArrivalOrderInvariant' \
		./internal/deploy ./internal/core/dataset ./internal/capture ./internal/cartography
	$(GO) test -race -count=2 -run 'UnderLossWorkerInvariant|ChaosWorkerInvariant' \
		./internal/core/dataset ./internal/cartography ./internal/core/wanperf
	$(GO) test -race -count=2 -run 'TestAnalyzeRetainsNoPooledBuffers' ./internal/capture
	$(GO) test -race -count=2 -run 'TestCaptureChaosRace' ./internal/capture
	$(GO) test -race -count=2 -run 'TestStreamingSmallChunkInvariance' .
	$(MAKE) serve-smoke
	$(MAKE) bench-smoke

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The most recent committed perf snapshot (BENCH_*.json sorts by date).
BENCH_BASELINE := $(lastword $(sort $(wildcard BENCH_*.json)))

# Tiny matrix under the race detector, compared against the committed
# snapshot. Advisory: -race skews timings far beyond the regression
# threshold, so this run proves the harness end to end (matrix, chaos
# and capture-chaos legs, snapshot write, compare) without gating on
# noisy numbers — the
# hard regression gate is exercised hermetically by the bench package's
# synthetic-regression test.
bench-smoke:
	$(GO) run -race ./cmd/cloudbench -sizes 1000 -workers 1 -reps 1 \
		-chaos flaky-internet -serve -serve-requests 300 \
		-out $(or $(TMPDIR),/tmp)/cloudscope-bench-smoke.json \
		$(if $(BENCH_BASELINE),-compare $(BENCH_BASELINE) -advisory)

# The query daemon end to end under the race detector: a cloudscoped
# server on a random port, a tiny seeded cloudload mix, zero request
# errors, and a parseable /metrics document.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke' ./internal/serve

# Full benchmark matrix; commit the refreshed BENCH_<date>.json to
# extend the repo's perf trajectory.
bench-snapshot:
	$(GO) run ./cmd/cloudbench

# Regenerate every table and figure of the paper.
experiments:
	$(GO) run ./cmd/experiments

# Run the fault-injection suite: the chaos engine's own tests, every
# campaign's failure/invariance tests, and the full-study chaos goldens
# (byte-identical outputs at every worker count under fault scenarios).
chaos:
	$(GO) test ./internal/chaos ./internal/chaos/trace
	$(GO) test -run 'UnderLoss|Chaos|Outage|Brownout|ServFail|Backoff' \
		./internal/core/dataset ./internal/cartography ./internal/core/wanperf ./internal/dnssrv
	$(GO) test -run 'TestChaosDeterminism|TestChaosChangesOutcomes|TestChaosRecordReplay|TestChaosBisect' .

# The fault-forensics loop in miniature, under the race detector:
# record a faulted study's trace, replay it byte-identically, and
# delta-debug it down to the culprit events.
bisect-smoke:
	$(GO) test -race -run 'TestChaosBisectMinimizesToCulprits' -v .

# Fuzz the chaos scenario parser (accepted specs must validate,
# round-trip, and drive the engine without panicking).
fuzz-chaos:
	$(GO) test -fuzz=FuzzParseScenario -fuzztime=10s ./internal/chaos

# Fuzz the chaos-v3 surfaces: the multi-hop trigger-path clause
# (accepted paths must round-trip and answer wire, vantage, and
# capture boost queries without panicking) and the fault-trace differ
# (never panics, empty exactly on self-comparison, magnitude-symmetric
# under operand swap).
fuzz-chaos-v3:
	$(GO) test -fuzz=FuzzParseTriggerPath -fuzztime=10s ./internal/chaos
	$(GO) test -fuzz=FuzzTraceDiff -fuzztime=10s ./internal/chaos/trace

# Fuzz the fault-trace decoder (malformed or truncated traces must
# error, never panic).
fuzz-trace:
	$(GO) test -fuzz=FuzzRead -fuzztime=10s ./internal/chaos/trace

# Fuzz the packet header decoder (truncated headers and lying length
# fields must error, never panic or over-read, and the allocating
# Decode must agree with the in-place DecodeHeaders).
fuzz-packet:
	$(GO) test -fuzz=FuzzDecodePacket -fuzztime=10s ./internal/packet

# Fuzz both pcap read paths (malformed or truncated streams must error,
# never panic, and the zero-copy ReadBlock path must parse
# byte-identically with the record-at-a-time Next path).
fuzz-pcap:
	$(GO) test -fuzz=FuzzPcapRead -fuzztime=10s ./internal/pcapio

# Fuzz the spill-file decoder (arbitrary bytes must decode cleanly or
# error — never panic or over-read — and whatever decodes must survive
# an encode/decode round trip).
fuzz-diskfmt:
	$(GO) test -fuzz=FuzzDiskFmtRoundTrip -fuzztime=10s ./internal/core/dataset/diskfmt

# Generate a world with shareable artifacts (pcap, zone files, CSVs).
world:
	$(GO) run ./cmd/worldgen -out world

clean:
	rm -rf world plots
