# cloudscope — reproduction of He et al., IMC 2013.

GO ?= go

.PHONY: all build test race bench experiments world clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper.
experiments:
	$(GO) run ./cmd/experiments

# Generate a world with shareable artifacts (pcap, zone files, CSVs).
world:
	$(GO) run ./cmd/worldgen -out world

clean:
	rm -rf world plots
