# cloudscope — reproduction of He et al., IMC 2013.

GO ?= go

.PHONY: all build check test race bench experiments world clean

all: build check test

build:
	$(GO) build ./...

# Static analysis plus race-detector runs over the packages with the
# hottest concurrent paths (telemetry instruments, fabric, resolver,
# the worker pool, and every parallelized analysis stage), plus a
# repeated small-shard stress run that forces shard-boundary
# interleavings in the pool.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/telemetry ./internal/simnet ./internal/dnssrv \
		./internal/parallel ./internal/core/patterns ./internal/core/regions \
		./internal/core/zones ./internal/core/wanperf ./internal/cartography \
		./internal/wan
	$(GO) test -race -count=5 -run TestStressShardBoundaries ./internal/parallel
	$(GO) test -race -count=5 -run 'WorkerCountInvariant|ArrivalOrderInvariant|WorkersParallelismAlias' \
		./internal/deploy ./internal/core/dataset ./internal/capture ./internal/cartography

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper.
experiments:
	$(GO) run ./cmd/experiments

# Generate a world with shareable artifacts (pcap, zone files, CSVs).
world:
	$(GO) run ./cmd/worldgen -out world

clean:
	rm -rf world plots
