package cloudscope

import (
	"io"

	"cloudscope/internal/core/dataset"
	"cloudscope/internal/deploy"
	"cloudscope/internal/parallel"
)

// StreamDataset runs the full bounded-memory data path: the world is
// generated chunk-by-chunk (deploy.GenerateStream), each chunk is
// scanned by the §2.1 discovery pipeline and then released back to the
// allocators, and the per-chunk partial datasets spill to disk and
// k-way merge into out as the text dataset format. The bytes written
// are identical to NewStudy(cfg).Dataset().WriteTo(out) at every
// worker count and chunk size — only the peak memory differs: one
// chunk's worth of world plus the merge readers instead of the whole
// 1M-domain world.
//
// chunkSize <= 0 generates the world in a single chunk (bounded only
// by the world itself); spillDir "" spills under os.TempDir(). The
// streaming path runs without telemetry or chaos — those need the
// memoized Study; callers wanting a hardened or instrumented crawl use
// NewStudy at a size that fits in memory.
func StreamDataset(cfg Config, chunkSize int, spillDir string, out io.Writer) (dataset.Stats, error) {
	if err := cfg.Validate(); err != nil {
		return dataset.Stats{}, err
	}
	if cfg.Chaos != nil || cfg.ChaosReplay != nil {
		return dataset.Stats{}, &ValidationError{Fields: []*FieldError{{
			Field:  "Chaos",
			Value:  "<scenario>",
			Reason: "the streaming data path does not run under chaos; use NewStudy",
		}}}
	}
	cfg = cfg.withDefaults()

	wcfg := deploy.DefaultConfig().Scaled(cfg.Domains)
	wcfg.Seed = cfg.Seed
	wcfg.Par = parallel.Options{Workers: cfg.Workers}
	ws := deploy.GenerateStream(wcfg, chunkSize)
	w := ws.World()

	sb, err := dataset.NewStreamBuilder(dataset.StreamConfig{
		Config: dataset.Config{
			Fabric:   w.Fabric,
			Registry: w.Registry,
			Ranges:   w.Ranges,
			Vantages: cfg.Vantages,
			Workers:  cfg.Workers,
		},
		Total:    cfg.Domains,
		SpillDir: spillDir,
	})
	if err != nil {
		return dataset.Stats{}, err
	}
	defer sb.Close()

	names := make([]string, 0, chunkSize)
	for {
		chunk := ws.Next()
		if chunk == nil {
			break
		}
		names = names[:0]
		for _, d := range chunk.Domains {
			names = append(names, d.Name)
		}
		// Scan before Release: the chunk's zones must still answer.
		if err := sb.AddChunk(names); err != nil {
			return sb.Stats(), err
		}
		ws.Release(chunk)
	}
	return sb.Finish(out)
}
