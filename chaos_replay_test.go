package cloudscope

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"cloudscope/internal/chaos"
	"cloudscope/internal/chaos/trace"
)

// replayConfig is the record/replay golden study — smaller than
// chaosConfig because the matrix below runs many full studies.
func replayConfig(seed int64, workers int, sc *chaos.Scenario) Config {
	return Config{
		Seed:         seed,
		Domains:      300,
		Vantages:     8,
		CaptureFlows: 300,
		WANClients:   6,
		Workers:      workers,
		Chaos:        sc,
	}
}

func traceBytes(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// recordRun executes every experiment with the recorder armed and
// returns the golden outputs plus the fault trace.
func recordRun(t *testing.T, cfg Config) (map[string]string, string, *trace.Trace) {
	t.Helper()
	cfg.ChaosRecord = true
	s := NewStudy(cfg)
	golden, sum := chaosGolden(s)
	tr := s.FaultTrace()
	if tr.Len() == 0 {
		t.Fatal("recorded trace is empty")
	}
	return golden, sum, tr
}

// TestChaosRecordReplayByteIdentity: replaying a recorded fault trace
// reproduces the original faulted run — every experiment output and
// the Completeness report, byte for byte — at Workers=1, Workers=4,
// and Workers=GOMAXPROCS, for two seeds of two scenarios (cascade
// carries correlated-failure triggers). The recorded trace itself is
// also canonical: recording at any worker count yields the same bytes,
// so a trace file never encodes the machine that produced it.
func TestChaosRecordReplayByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full studies")
	}
	workerCounts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		workerCounts = append(workerCounts, p)
	}

	cases := []struct {
		scenario string
		seeds    []int64
	}{
		{"hostile", []int64{3, 11}},
		{"cascade", []int64{3, 11}},
	}
	for _, tc := range cases {
		sc, err := chaos.Load(tc.scenario)
		if err != nil {
			t.Fatal(err)
		}
		if tc.scenario == "cascade" && len(sc.Triggers) == 0 {
			t.Fatal("cascade lost its correlated-failure triggers")
		}
		for _, seed := range tc.seeds {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", tc.scenario, seed), func(t *testing.T) {
				golden, goldenSum, tr := recordRun(t, replayConfig(seed, 1, sc))

				// Trace canonicality across worker counts (one seed per
				// scenario keeps the matrix affordable).
				if seed == 3 {
					want := traceBytes(t, tr)
					for _, workers := range workerCounts[1:] {
						_, _, tr2 := recordRun(t, replayConfig(seed, workers, sc))
						if traceBytes(t, tr2) != want {
							t.Errorf("trace bytes differ between Workers=1 and Workers=%d", workers)
						}
					}
				}

				// Replay identity at every worker count. The replay
				// config carries no scenario at all: every verdict must
				// come from the trace, not from hash draws.
				for _, workers := range workerCounts {
					cfg := replayConfig(seed, workers, nil)
					cfg.ChaosReplay = tr
					got, gotSum := chaosGolden(NewStudy(cfg))
					if gotSum == goldenSum {
						continue
					}
					for id, want := range golden {
						if got[id] != want {
							t.Errorf("%s differs between recorded run and replay at Workers=%d under %q (seed %d):\n--- recorded ---\n%s\n--- replay ---\n%s",
								id, workers, tc.scenario, seed, want, got[id])
						}
					}
				}
			})
		}
	}
}

// TestChaosBisectMinimizesToCulprits is the bisection demo: a seeded
// hostile run's discovery output diverges from the fault-free golden;
// BisectFaultTrace shrinks the recorded trace to a minimal culprit
// set, and replaying only that sub-trace still reproduces the
// divergence while dropping any single culprit loses it (1-minimality).
func TestChaosBisectMinimizesToCulprits(t *testing.T) {
	if testing.Short() {
		t.Skip("delta debugging replays the study repeatedly")
	}
	sc, err := chaos.Load("hostile")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 7, Domains: 120, Vantages: 6, Workers: 1}
	probe := func(s *Study) string {
		out, err := s.RunExperiment("table3")
		if err != nil {
			t.Fatal(err)
		}
		return out + s.Completeness().Report()
	}
	golden := probe(NewStudy(cfg))

	rcfg := cfg
	rcfg.Chaos, rcfg.ChaosRecord = sc, true
	rec := NewStudy(rcfg)
	if probe(rec) == golden {
		t.Fatal("hostile run does not diverge from the fault-free golden; nothing to bisect")
	}
	tr := rec.FaultTrace()

	min, replays := BisectFaultTrace(cfg, tr, func(c *Study) bool { return probe(c) != golden })
	t.Logf("bisected %d events to %d culprit(s) in %d replays", tr.Len(), min.Len(), replays)
	if min.Len() == 0 || min.Len() >= tr.Len() {
		t.Fatalf("bisect did not shrink the trace: %d -> %d events", tr.Len(), min.Len())
	}

	ccfg := cfg
	ccfg.ChaosReplay = min
	if probe(NewStudy(ccfg)) == golden {
		t.Fatal("replaying the minimal culprit set no longer reproduces the divergence")
	}

	if min.Len() <= 4 {
		for i := range min.Events {
			sub := &trace.Trace{Header: min.Header}
			sub.Events = append(append([]trace.Event{}, min.Events[:i]...), min.Events[i+1:]...)
			sub.Header.Events = len(sub.Events)
			scfg := cfg
			scfg.ChaosReplay = sub
			if probe(NewStudy(scfg)) != golden {
				t.Errorf("culprit event %d is not needed: the divergence survives without it", i)
			}
		}
	}
}
